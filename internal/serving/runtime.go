package serving

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"smiless/internal/apps"
	"smiless/internal/clock"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/faults"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
	"smiless/internal/placement"
	"smiless/internal/simulator"
	"smiless/internal/tracing"
)

// The simulator is the reference implementation of the shared clock
// contract; assert it here (not in package simulator, whose
// //lint:deterministic tag must not grow a clock import).
var _ clock.Clock = (*simulator.Simulator)(nil)

// event kinds, mirroring the simulator's event loop.
const (
	evInitDone = iota
	evExecDone
	evIdleTimeout
	evPrewarm
	evInitFail
	evExecFail
	evExecTimeout
	evHedge
	evRetry
	evLinger
	evWindow
	evGossip         // health-detector tick
	evDeadline       // per-request deadline elapsed
	evNodeCrash      // scheduled NodeFault: process dies (cid = node)
	evNodeRestart    // scheduled NodeFault: crashed node rejoins (cid = node)
	evPartitionStart // scheduled NodeFault: node unreachable (cid = node)
	evPartitionEnd   // scheduled NodeFault: partition heals (cid = node)
	evPreempt        // spot preemption window begins (cid = node)
	evPreemptEnd     // preempted capacity returns (cid = node)
)

type event struct {
	at    float64 // model-time deadline in seconds
	seq   int     // FIFO tie-break among equal deadlines
	kind  int
	cid   int // container id (node index for node events)
	epoch int
	fn    dag.NodeID
	ni    *nodeInv
	inv   *appInv // deadline events
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at { //lint:allow floateq heap tie-break: the seq comparison applies only on exact deadline collisions
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// injector is the fault source (satisfied by *faults.Injector); kept as an
// interface so tests can script outcomes.
type injector interface {
	InitOutcome(fn string) (bool, float64)
	ExecOutcome(fn string) (bool, float64)
	StragglerFactor(fn string) float64
	Jitter() float64
}

// Runtime is the live control plane: one application served by a mock
// executor pool against a real (or fake) clock.
//
// Concurrency contract: all mutable state is guarded by mu. The
// simulator.ControlPlane methods (SetDirective, SchedulePrewarm,
// EnsureInstances, Stats, ...) do NOT take the lock themselves — they are
// for the driver, whose Setup and OnWindow callbacks already run under it.
// External callers (gateways, tests) use the locked surface instead:
// Invoke, Snapshot, LiveCost, Inflight, Rejected, Drain, Close.
type Runtime struct {
	cfg    Config
	driver simulator.Driver
	clk    clock.Scheduler

	mu     sync.Mutex
	rng    *rand.Rand
	prng   *rand.Rand // placement-only stream: p2c draws never perturb timing samples
	inj    injector
	rec    *tracing.Recorder
	events eventHeap
	seq    int
	nodes  []*nodeAgent
	// lastPop records the deadline of the most recently popped event; only
	// written under -tags smiless_invariants, where the event loop asserts
	// pops never run backwards.
	lastPop float64

	fns      map[dag.NodeID]*fnState
	conts    map[int]*container
	nextCont int
	nextInv  int

	arrivalsThisWindow int
	counts             []int
	arrivalTimes       []float64
	stats              *simulator.RunStats

	inflight int
	rejected int
	draining bool
	closed   bool
	started  bool
	drainCh  chan struct{}

	// Loop coordination: wake is poked when an external caller schedules
	// an event the sleeping loop does not know about; sleeping and
	// wakePending back the Quiesced probe fake-clock tests step on.
	wake        chan struct{}
	stopCh      chan struct{}
	sleeping    bool
	wakePending bool
	loopDone    chan struct{}
}

// New prepares a runtime for the given configuration and driver. The
// runtime is inert until Start.
func New(cfg Config, driver simulator.Driver) (*Runtime, error) {
	if driver == nil {
		return nil, &ConfigError{Field: "driver", Reason: "must not be nil"}
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:      cfg,
		driver:   driver,
		clk:      cfg.Clock,
		rng:      mathx.NewRand(cfg.Seed),
		prng:     mathx.NewRand(cfg.Seed ^ 0x9e3779b9),
		rec:      cfg.Recorder,
		fns:      make(map[dag.NodeID]*fnState),
		conts:    make(map[int]*container),
		stats:    simulator.NewRunStats(cfg.SLA),
		wake:     make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	for _, id := range cfg.App.Graph.Nodes() {
		rt.fns[id] = &fnState{
			id:         id,
			spec:       cfg.App.Spec(id),
			class:      placement.ClassOf(cfg.App.Spec(id).Field),
			containers: make(map[int]*container),
			directive: normalize(simulator.Directive{
				Config: hardware.Config{Kind: hardware.CPU, Cores: 1},
				Policy: coldstart.KeepAlive,
				Batch:  1, Instances: 1, KeepAlive: 60,
			}),
		}
	}
	rt.nodes = make([]*nodeAgent, cfg.Nodes)
	for i := range rt.nodes {
		rt.nodes[i] = &nodeAgent{id: i, health: nodeUp, alive: true}
	}
	// Guard against the typed-nil interface trap: only assign when the
	// injector is actually enabled.
	if in := faults.NewInjector(cfg.Faults); in != nil {
		rt.inj = in
	}
	return rt, nil
}

// normalize fills Directive defaults (the simulator's normalized() is
// unexported).
func normalize(d simulator.Directive) simulator.Directive {
	if d.Batch < 1 {
		d.Batch = 1
	}
	if d.Instances < 1 {
		d.Instances = 1
	}
	return d
}

// Start runs the driver's Setup, arms the decision-window cadence and
// launches the scheduler loop. It must be called exactly once.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	if rt.started || rt.closed {
		rt.mu.Unlock()
		panic("serving: Start called twice or after Close")
	}
	rt.started = true
	rt.driver.Setup(rt)
	now := rt.now()
	rt.schedule(&event{at: now + rt.cfg.Window, kind: evWindow})
	// Scheduled node faults: times are model seconds from the epoch.
	if rt.cfg.Faults != nil {
		for _, nf := range rt.cfg.Faults.NodeFaults {
			switch nf.Kind {
			case faults.NodeCrash:
				rt.schedule(&event{at: now + nf.Start, kind: evNodeCrash, cid: nf.Node})
				if nf.End > nf.Start {
					rt.schedule(&event{at: now + nf.End, kind: evNodeRestart, cid: nf.Node})
				}
			case faults.NodePartition:
				rt.schedule(&event{at: now + nf.Start, kind: evPartitionStart, cid: nf.Node})
				rt.schedule(&event{at: now + nf.End, kind: evPartitionEnd, cid: nf.Node})
			}
		}
	}
	// Spot preemption windows: like scheduled node faults, times are model
	// seconds from the epoch.
	if rt.cfg.PriceTrace != nil {
		for _, w := range rt.cfg.PriceTrace.Preemptions {
			rt.schedule(&event{at: now + w.Start, kind: evPreempt, cid: w.Node})
			rt.schedule(&event{at: now + w.End, kind: evPreemptEnd, cid: w.Node})
		}
	}
	// The detector only ticks when something can miss heartbeats: a
	// multi-node pool, or scheduled node faults on a single node.
	if rt.nodesActive() || (rt.cfg.Faults != nil && len(rt.cfg.Faults.NodeFaults) > 0) {
		rt.schedule(&event{at: now + rt.cfg.GossipInterval, kind: evGossip})
	}
	rt.mu.Unlock()
	go rt.loop()
}

// now returns the current model time. Safe without the lock (the clock is
// concurrency-safe by contract).
func (rt *Runtime) now() float64 { return rt.clk.Now() }

// schedule pushes one future event; callers hold mu.
func (rt *Runtime) schedule(e *event) {
	rt.seq++
	e.seq = rt.seq
	heap.Push(&rt.events, e)
}

// wakeLoop pokes the scheduler loop to re-read the heap; callers hold mu.
// Used by external entry points (Invoke) whose events the sleeping loop
// does not know about; events scheduled from inside the loop are picked up
// when it recomputes its next deadline.
func (rt *Runtime) wakeLoop() {
	if rt.wakePending {
		return
	}
	rt.wakePending = true
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// loop is the scheduler goroutine: sleep until the earliest event deadline,
// then drain everything due under the lock. It is the only goroutine that
// pops the heap, so events are always handled in deadline order — the same
// discipline as the simulator's discrete-event loop.
func (rt *Runtime) loop() {
	defer close(rt.loopDone)
	for {
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			return
		}
		rt.sleeping = false
		rt.wakePending = false
		for len(rt.events) > 0 && rt.events[0].at <= rt.now() {
			e := heap.Pop(&rt.events).(*event)
			if invariantsEnabled {
				invariant(e.at >= rt.lastPop, "deadline heap popped out of order: %.9f after %.9f (kind %d)", e.at, rt.lastPop, e.kind)
				rt.lastPop = e.at
			}
			rt.handle(e)
		}
		// Register the wake-up timer BEFORE publishing sleeping=true and
		// releasing the lock: Quiesced (the fake-clock stepping probe) must
		// only report true once the clock waiter for the earliest deadline
		// exists, otherwise a test advancer could jump time past it via a
		// stale waiter from an abandoned earlier registration.
		var timer <-chan struct{}
		if len(rt.events) > 0 {
			timer = rt.clk.After(rt.events[0].at - rt.now())
		}
		rt.sleeping = true
		rt.mu.Unlock()

		select {
		case <-rt.stopCh:
			return
		case <-rt.wake:
		case <-timer: // nil (blocks forever) when the heap is empty
		}
	}
}

// handle dispatches one due event; callers hold mu. Node-side events (init
// and exec completions or crashes) from a crashed node are dropped — the
// work died with the process — and from a partitioned node they are held and
// replayed in order when the partition heals.
func (rt *Runtime) handle(e *event) {
	if nodeSideEvent(e.kind) {
		if c := rt.conts[e.cid]; c != nil {
			n := rt.nodes[c.node]
			if !n.alive {
				return
			}
			if n.partitioned {
				n.held = append(n.held, e)
				return
			}
		}
	}
	switch e.kind {
	case evInitDone:
		rt.onInitDone(e.cid)
	case evExecDone:
		rt.onExecDone(e.cid, e.epoch)
	case evIdleTimeout:
		rt.onIdleTimeout(e.cid, e.epoch)
	case evPrewarm:
		rt.onPrewarm(e.fn)
	case evInitFail:
		rt.onInitFail(e.cid)
	case evExecFail:
		rt.onExecFail(e.cid, e.epoch)
	case evExecTimeout:
		rt.onExecTimeout(e.cid, e.epoch)
	case evHedge:
		rt.onHedge(e.cid, e.epoch)
	case evRetry:
		rt.onRetry(e.ni)
	case evLinger:
		rt.onLinger(e.fn, e.epoch)
	case evGossip:
		rt.onGossip()
	case evDeadline:
		rt.onDeadline(e.inv)
	case evNodeCrash:
		rt.onNodeCrash(e.cid)
	case evNodeRestart:
		rt.onNodeRestart(e.cid)
	case evPartitionStart:
		rt.onPartitionStart(e.cid)
	case evPartitionEnd:
		rt.onPartitionEnd(e.cid)
	case evPreempt:
		rt.onPreempt(e.cid)
	case evPreemptEnd:
		rt.onPreemptEnd(e.cid)
	case evWindow:
		rt.counts = append(rt.counts, rt.arrivalsThisWindow)
		rt.arrivalsThisWindow = 0
		rt.driver.OnWindow(rt, rt.now())
		rt.samplePods()
		rt.schedule(&event{at: e.at + rt.cfg.Window, kind: evWindow})
	}
}

// Quiesced reports whether the runtime has fully reacted to the current
// clock reading: the scheduler loop is asleep with no pending wake-up and
// no event is due. Fake-clock tests step time by waiting for Quiesced, then
// advancing to the next deadline — that way every event is handled exactly
// at its deadline and latency assertions hold to float precision.
func (rt *Runtime) Quiesced() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.sleeping || rt.wakePending {
		return false
	}
	return len(rt.events) == 0 || rt.events[0].at > rt.now()
}

// Invoke admits one application request and returns a channel that yields
// its terminal Result. It fails fast with ErrOverloaded when the inflight
// cap or an entry queue bound is hit, ErrDraining/ErrClosed during
// shutdown. ctx binds the request to its caller: if ctx is cancelled before
// the request resolves, the request is abandoned — it fails immediately and
// frees its admission slot. Config.DefaultDeadline, when set, bounds the
// request's end-to-end latency.
func (rt *Runtime) Invoke(ctx context.Context) (<-chan Result, error) {
	return rt.InvokeWithDeadline(ctx, 0)
}

// InvokeWithDeadline is Invoke with an explicit end-to-end budget in model
// seconds; budget 0 falls back to Config.DefaultDeadline (0 = unbounded).
// Forwarding, failover and retries all respect the deadline: a request still
// unresolved when it elapses fails with Result.DeadlineExceeded.
func (rt *Runtime) InvokeWithDeadline(ctx context.Context, budget float64) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background() //lint:allow ctxflow nil-ctx compatibility fallback: the caller explicitly declined cancellation
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, ErrClosed
	}
	if rt.draining {
		return nil, ErrDraining
	}
	if err := ctx.Err(); err != nil {
		// The caller was gone before admission: do not burn a slot.
		return nil, err
	}
	if rt.inflight >= rt.cfg.MaxInflight {
		rt.rejected++
		return nil, ErrOverloaded
	}
	g := rt.cfg.App.Graph
	for _, src := range g.Sources() {
		if len(rt.fns[src].queue) >= rt.cfg.QueueCap {
			rt.rejected++
			return nil, ErrOverloaded
		}
	}
	if budget <= 0 {
		budget = rt.cfg.DefaultDeadline
	}
	rt.inflight++
	invariant(rt.inflight <= rt.cfg.MaxInflight, "admission slots over-committed: inflight %d > max %d", rt.inflight, rt.cfg.MaxInflight)
	inv, ch := rt.onArrival()
	if budget > 0 {
		inv.deadline = inv.arrival + budget
		rt.schedule(&event{at: inv.deadline, kind: evDeadline, inv: inv})
	}
	// Watch for caller disconnect only when the context can actually be
	// cancelled: fake-clock tests pass context.Background() and stay
	// goroutine-free.
	if ctx.Done() != nil {
		go rt.watchAbandon(ctx, inv)
	}
	rt.wakeLoop()
	return ch, nil
}

// watchAbandon abandons inv when its caller's context is cancelled first.
func (rt *Runtime) watchAbandon(ctx context.Context, inv *appInv) {
	select {
	case <-inv.settled:
	case <-ctx.Done():
		rt.abandon(inv)
	}
}

// abandon fails an admitted request whose caller went away, freeing its
// admission slot and purging its queued members.
func (rt *Runtime) abandon(inv *appInv) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed || inv.resolved || inv.failed {
		return
	}
	rt.stats.Abandoned++
	now := rt.now()
	rt.dropInvocation(inv, Result{
		ReqID: inv.id, Arrival: inv.arrival, End: now,
		E2E: now - inv.arrival, Failed: true, Abandoned: true,
	})
	rt.wakeLoop()
}

// onDeadline fails a request whose end-to-end budget elapsed unresolved.
func (rt *Runtime) onDeadline(inv *appInv) {
	if inv == nil || inv.resolved || inv.failed {
		return
	}
	rt.stats.DeadlineExceeded++
	now := rt.now()
	rt.dropInvocation(inv, Result{
		ReqID: inv.id, Arrival: inv.arrival, End: now,
		E2E: now - inv.arrival, Failed: true, DeadlineExceeded: true,
	})
}

// onArrival admits one request: record the arrival, fire reactive
// pre-warms, release the entry function. Callers hold mu. Port of the
// simulator's onArrival plus the Result channel.
func (rt *Runtime) onArrival() (*appInv, <-chan Result) {
	now := rt.now()
	rt.arrivalsThisWindow++
	rt.arrivalTimes = append(rt.arrivalTimes, now)
	g := rt.cfg.App.Graph
	inv := &appInv{
		id:        rt.nextInv,
		arrival:   now,
		pending:   make(map[dag.NodeID]int, g.Len()),
		done:      make(map[dag.NodeID]bool, g.Len()),
		remaining: g.Len(),
		resCh:     make(chan Result, 1),
		settled:   make(chan struct{}),
	}
	rt.nextInv++
	if rt.rec != nil {
		rt.rec.BeginRequest(inv.id, now)
	}
	for _, id := range g.Nodes() {
		inv.pending[id] = len(g.Predecessors(id))
	}
	for _, id := range g.Nodes() {
		fs := rt.fns[id]
		if fs.directive.PrewarmOnArrival && len(g.Predecessors(id)) > 0 {
			rt.SchedulePrewarm(id, now+fs.directive.PathOffset)
		}
	}
	for _, src := range g.Sources() {
		rt.enqueue(&nodeInv{inv: inv, node: src, readyAt: now})
	}
	return inv, inv.resCh
}

// Drain stops admitting new requests and blocks until every inflight
// request has resolved, or the real-time timeout elapses. It is idempotent;
// concurrent calls share the same drain.
//
//lint:allow ctxflow the wait is bounded by the timeout parameter; a context would duplicate it
func (rt *Runtime) Drain(timeout time.Duration) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrClosed
	}
	if !rt.draining {
		rt.draining = true
		rt.drainCh = make(chan struct{})
		if rt.inflight == 0 {
			close(rt.drainCh)
		}
	}
	ch := rt.drainCh
	rt.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-time.After(timeout): //lint:allow clockhygiene drain timeout is a real-time operational bound by contract, not model time
		return fmt.Errorf("serving: drain timed out after %v with %d inflight", timeout, rt.Inflight())
	}
}

// Close stops the scheduler loop and terminates every container, settling
// the cost ledger. Pending requests that have not resolved receive a failed
// Result. Close is idempotent.
//
//lint:allow ctxflow shutdown joins the scheduler goroutine, which always terminates once stopCh closes
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	// Settle the ledger: terminate in id order so float cost accumulation
	// is reproducible.
	ids := make([]int, 0, len(rt.conts))
	for id := range rt.conts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if c := rt.conts[id]; c != nil && c.state != cDead {
			rt.terminate(c)
		}
	}
	// Settle detector-declared down time still open at shutdown.
	now := rt.now()
	for _, n := range rt.nodes {
		if n.health == nodeDown && n.detectorDown {
			rt.stats.NodeDownSeconds += now - n.downSince
		}
	}
	close(rt.stopCh)
	started := rt.started
	rt.mu.Unlock()
	if started {
		<-rt.loopDone
	}
}

// --- Locked external observers -----------------------------------------

// Inflight returns the number of admitted-but-unresolved requests.
func (rt *Runtime) Inflight() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.inflight
}

// Rejected returns the number of requests refused by admission control.
func (rt *Runtime) Rejected() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.rejected
}

// Draining reports whether the runtime has stopped admitting requests.
func (rt *Runtime) Draining() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.draining || rt.closed
}

// Config returns the effective (defaulted) configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Snapshot returns a deep copy of the run statistics, safe to read while
// the runtime serves. Cost totals cover terminated containers; add
// LiveCost for still-running instances.
func (rt *Runtime) Snapshot() *simulator.RunStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := *rt.stats
	st.CostPerFn = make(map[string]float64, len(rt.stats.CostPerFn))
	for k, v := range rt.stats.CostPerFn {
		st.CostPerFn[k] = v
	}
	if rt.stats.ViolationByFn != nil {
		st.ViolationByFn = make(map[string]int, len(rt.stats.ViolationByFn))
		for k, v := range rt.stats.ViolationByFn {
			st.ViolationByFn[k] = v
		}
	}
	st.E2E = append([]float64(nil), rt.stats.E2E...)
	st.E2EArrival = append([]float64(nil), rt.stats.E2EArrival...)
	st.PodSamples = append([]simulator.PodSample(nil), rt.stats.PodSamples...)
	return &st
}

// CountsHistoryLocked is the external (locked) counterpart of the
// driver-facing CountsHistory.
func (rt *Runtime) CountsHistoryLocked() []int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.CountsHistory()
}

// ArrivalTimesLocked is the external (locked) counterpart of the
// driver-facing ArrivalTimes.
func (rt *Runtime) ArrivalTimesLocked() []float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ArrivalTimes()
}

// LiveCost returns the cost accrued by still-live containers.
func (rt *Runtime) LiveCost() float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.AccruedCost()
}

// LiveContainers returns the per-function live instance counts, keyed by
// function name.
func (rt *Runtime) LiveContainers() map[string]int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]int, len(rt.fns))
	for id, fs := range rt.fns {
		out[string(id)] = fs.liveCount()
	}
	return out
}

// QueueLens returns the per-function ready-queue depths, keyed by function
// name.
func (rt *Runtime) QueueLens() map[string]int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]int, len(rt.fns))
	for id, fs := range rt.fns {
		out[string(id)] = len(fs.queue)
	}
	return out
}

// --- simulator.ControlPlane --------------------------------------------
// Driver-facing surface; see the Runtime doc for the locking contract.

var _ simulator.ControlPlane = (*Runtime)(nil)

// Now returns the current model time in seconds since the runtime's epoch.
func (rt *Runtime) Now() float64 { return rt.now() }

// App returns the application under management.
func (rt *Runtime) App() *apps.Application { return rt.cfg.App }

// SLA returns the run's end-to-end latency bound.
func (rt *Runtime) SLA() float64 { return rt.cfg.SLA }

// Window returns the decision-window length.
func (rt *Runtime) Window() float64 { return rt.cfg.Window }

// SetDirective installs the per-function policy and re-dispatches queued
// work under it.
func (rt *Runtime) SetDirective(id dag.NodeID, d simulator.Directive) {
	fs := rt.fn(id)
	fs.directive = normalize(d)
	if len(fs.queue) > 0 {
		rt.pump(fs)
	}
}

// GetDirective returns the current directive for one function.
func (rt *Runtime) GetDirective(id dag.NodeID) simulator.Directive {
	return rt.fn(id).directive
}

// CountsHistory returns completed per-window arrival counts so far.
func (rt *Runtime) CountsHistory() []int {
	return append([]int(nil), rt.counts...)
}

// ArrivalTimes returns every arrival timestamp observed so far.
func (rt *Runtime) ArrivalTimes() []float64 {
	return append([]float64(nil), rt.arrivalTimes...)
}

// QueueLen returns one function's ready-but-undispatched backlog.
func (rt *Runtime) QueueLen(id dag.NodeID) int { return len(rt.fn(id).queue) }

// LiveInstances returns the number of live containers for a function.
func (rt *Runtime) LiveInstances(id dag.NodeID) int { return rt.fn(id).liveCount() }

// EnsureConfigInstance launches one instance of the function's current
// directive configuration unless one is already live.
func (rt *Runtime) EnsureConfigInstance(id dag.NodeID) {
	fs := rt.fn(id)
	for _, c := range fs.containers {
		if c.state != cDead && c.cfg == fs.directive.Config {
			return
		}
	}
	rt.launch(fs, fs.directive.Config, true)
}

// EnsureInstances launches instances of the directive config until n are
// live (bounded by the directive's Instances cap).
func (rt *Runtime) EnsureInstances(id dag.NodeID, n int) {
	fs := rt.fn(id)
	if n > fs.directive.Instances {
		n = fs.directive.Instances
	}
	for fs.liveCount() < n {
		rt.launch(fs, fs.directive.Config, true)
	}
}

// HasWarmMatching reports whether an idle or busy instance of the current
// directive configuration exists.
func (rt *Runtime) HasWarmMatching(id dag.NodeID) bool {
	fs := rt.fn(id)
	for _, c := range fs.containers {
		if (c.state == cIdle || c.state == cBusy) && c.cfg == fs.directive.Config {
			return true
		}
	}
	return false
}

// RetireMismatched terminates idle instances whose configuration no longer
// matches the directive, keeping at least MinWarm live instances.
func (rt *Runtime) RetireMismatched(id dag.NodeID) {
	fs := rt.fn(id)
	ids := make([]int, 0, len(fs.containers))
	for cid := range fs.containers {
		ids = append(ids, cid)
	}
	sort.Ints(ids)
	for _, cid := range ids {
		c := fs.containers[cid]
		if c != nil && c.state == cIdle && c.cfg != fs.directive.Config &&
			fs.liveCount() > fs.directive.MinWarm+1 {
			rt.terminate(c)
		}
	}
}

// SchedulePrewarm asks for a warm instance of fn at time at; initialization
// starts at max(now, at − PrewarmLead).
func (rt *Runtime) SchedulePrewarm(id dag.NodeID, at float64) {
	fs := rt.fn(id)
	start := coldstart.PrewarmStart(rt.now(), at, fs.directive.PrewarmLead)
	rt.schedule(&event{at: start, kind: evPrewarm, fn: id})
}

// FunctionCost returns the cost attributable to one function so far:
// terminated containers' billed cost plus live containers' accrual, summed
// in container-id order for reproducibility.
func (rt *Runtime) FunctionCost(id dag.NodeID) float64 {
	fs := rt.fn(id)
	total := rt.stats.CostPerFn[string(id)]
	now := rt.now()
	for _, c := range sortedConts(fs.containers) {
		if c.state != cDead {
			_, cost := rt.billedLife(c, now)
			total += cost
		}
	}
	return total
}

// AccruedCost returns the cost accrued by still-live containers.
func (rt *Runtime) AccruedCost() float64 {
	total := 0.0
	now := rt.now()
	for _, c := range sortedConts(rt.conts) {
		if c.state != cDead {
			_, cost := rt.billedLife(c, now)
			total += cost
		}
	}
	return total
}

// billedLife returns a container's billed lifetime in model seconds and its
// dollar cost from initialization start to now: static pricing by default,
// or the spot trace's multiplier-weighted integral when one is configured.
// FlatTrace(1) integrates to exactly the raw lifetime, so its bills are
// bit-identical to static pricing.
func (rt *Runtime) billedLife(c *container, now float64) (life, cost float64) {
	life = now - c.initStart
	unit := rt.cfg.Pricing.UnitCost(c.cfg)
	if pt := rt.cfg.PriceTrace; pt != nil {
		return life, unit * pt.Integrate(c.initStart, now)
	}
	return life, life * unit
}

// Stats exposes the live run statistics. Drivers may both read and bump
// counters (e.g. DegradedWindows) from their callbacks; external readers
// use Snapshot instead.
func (rt *Runtime) Stats() *simulator.RunStats { return rt.stats }

// TraceRecorder returns the attached span recorder, or nil.
func (rt *Runtime) TraceRecorder() *tracing.Recorder { return rt.rec }

// FaultsEnabled reports whether fault injection is active.
func (rt *Runtime) FaultsEnabled() bool { return rt.inj != nil }

// ExecLatencyQuantile returns the p-th percentile (0–100) of the function's
// recent observed execution durations, or 0 with no samples yet.
func (rt *Runtime) ExecLatencyQuantile(id dag.NodeID, p float64) float64 {
	return mathx.Percentile(rt.fn(id).execLat, p)
}

// FnResilience returns the function's cumulative init failures, execution
// failures and successful batches.
func (rt *Runtime) FnResilience(id dag.NodeID) (initFails, execFails, successes int) {
	fs := rt.fn(id)
	return fs.initFails, fs.execFails, fs.successes
}

// fn resolves a function id, panicking on unknown ids exactly like the
// simulator (a driver addressing a function outside the app graph is a
// programming error).
func (rt *Runtime) fn(id dag.NodeID) *fnState {
	fs, ok := rt.fns[id]
	if !ok {
		panic(fmt.Sprintf("serving: unknown function %q", id))
	}
	return fs
}

// sortedConts returns a container map's values ordered by id, so that
// floating-point accumulation over them is reproducible.
func sortedConts(m map[int]*container) []*container {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*container, len(ids))
	for i, id := range ids {
		out[i] = m[id]
	}
	return out
}

// samplePods records pod-count and arrival series each window.
func (rt *Runtime) samplePods() {
	cpuPods, gpuPods := 0, 0
	for _, c := range rt.conts {
		if c.state == cDead {
			continue
		}
		if c.cfg.Kind == hardware.CPU {
			cpuPods++
		} else {
			gpuPods++
		}
	}
	last := 0
	if len(rt.counts) > 0 {
		last = rt.counts[len(rt.counts)-1]
	}
	rt.stats.PodSamples = append(rt.stats.PodSamples, simulator.PodSample{
		Time: rt.now(), CPU: cpuPods, GPU: gpuPods, Arrivals: last,
	})
}

package serving

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"smiless/internal/apps"
	"smiless/internal/clock"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/faults"
	"smiless/internal/hardware"
	"smiless/internal/simulator"
)

// testChain builds a linear DAG whose specs are noise-free: function i
// executes in exactly execLat[i] seconds on any config and cold-starts in
// exactly initLat seconds, so fake-clock tests can assert end-to-end
// latencies to float precision.
func testChain(execLat []float64, initLat float64) *apps.Application {
	g := dag.New()
	specs := make(map[dag.NodeID]*apps.FunctionSpec)
	var prev dag.NodeID
	for i, lat := range execLat {
		id := dag.NodeID(fmt.Sprintf("F%d", i+1))
		g.MustAddNode(id, "test")
		if i > 0 {
			g.MustAddEdge(prev, id)
		}
		specs[id] = &apps.FunctionSpec{
			Name: string(id), Model: "test", Field: "test",
			CPUG: lat, GPUG: lat,
			CPUInitMu: initLat, GPUInitMu: initLat,
		}
		prev = id
	}
	return &apps.Application{Name: "test-chain", Graph: g, Specs: specs}
}

// staticDriver installs one directive per function at Setup and does
// nothing per window.
type staticDriver struct {
	dir func(id dag.NodeID) simulator.Directive
}

func (d *staticDriver) Name() string { return "static" }
func (d *staticDriver) Setup(cp simulator.ControlPlane) {
	for _, id := range cp.App().Graph.Nodes() {
		cp.SetDirective(id, d.dir(id))
	}
}
func (d *staticDriver) OnWindow(cp simulator.ControlPlane, now float64) {}

func keepAliveDriver(batch int) *staticDriver {
	return &staticDriver{dir: func(id dag.NodeID) simulator.Directive {
		return simulator.Directive{
			Config:    hardware.Config{Kind: hardware.CPU, Cores: 4},
			Policy:    coldstart.KeepAlive,
			KeepAlive: 60,
			Batch:     batch,
			Instances: 2,
		}
	}}
}

// stepUntil drives a fake-clock runtime: whenever the runtime has fully
// reacted to the current time (Quiesced), advance to the next timer
// deadline; repeat until cond holds. Each event is therefore handled
// exactly at its deadline.
func stepUntil(t *testing.T, rt *Runtime, fake *clock.Fake, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("stepUntil: condition not reached by model time %v", fake.Now())
		}
		if rt.Quiesced() {
			if !fake.AdvanceToNext() {
				time.Sleep(20 * time.Microsecond)
			}
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// await steps the clock until the invocation resolves.
func await(t *testing.T, rt *Runtime, fake *clock.Fake, ch <-chan Result) Result {
	t.Helper()
	var res Result
	got := false
	stepUntil(t, rt, fake, func() bool {
		select {
		case res = <-ch:
			got = true
		default:
		}
		return got
	})
	return res
}

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func newTestRuntime(t *testing.T, cfg Config, driver simulator.Driver) (*Runtime, *clock.Fake) {
	t.Helper()
	fake := clock.NewFake()
	cfg.Clock = fake
	rt, err := New(cfg, driver)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	return rt, fake
}

func TestColdThenWarmRequest(t *testing.T) {
	app := testChain([]float64{0.1, 0.2, 0.3}, 1.0)
	rt, fake := newTestRuntime(t, Config{App: app, SLA: 10}, keepAliveDriver(1))

	ch, err := rt.Invoke(context.Background())
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	res := await(t, rt, fake, ch)
	// Fully cold: every stage pays its init then its execution.
	want := 3*1.0 + 0.1 + 0.2 + 0.3
	if !near(res.E2E, want, 1e-9) {
		t.Errorf("cold E2E = %v, want %v", res.E2E, want)
	}
	if res.Failed || res.SLAViolated {
		t.Errorf("cold request: Failed=%v SLAViolated=%v", res.Failed, res.SLAViolated)
	}

	// All three instances stay warm under keep-alive: the second request
	// pays execution only.
	ch2, err := rt.Invoke(context.Background())
	if err != nil {
		t.Fatalf("second Invoke: %v", err)
	}
	res2 := await(t, rt, fake, ch2)
	if want := 0.6; !near(res2.E2E, want, 1e-9) {
		t.Errorf("warm E2E = %v, want %v", res2.E2E, want)
	}

	st := rt.Snapshot()
	if st.Completed != 2 || st.Inits != 3 || st.WarmStarts != 3 {
		t.Errorf("stats: Completed=%d Inits=%d WarmStarts=%d, want 2/3/3",
			st.Completed, st.Inits, st.WarmStarts)
	}
	if st.Violations != 0 {
		t.Errorf("Violations = %d, want 0", st.Violations)
	}

	// Keep-alive expiry reaps all three instances 60 idle seconds later.
	stepUntil(t, rt, fake, func() bool {
		total := 0
		for _, n := range rt.LiveContainers() {
			total += n
		}
		return total == 0
	})
	if cost := rt.LiveCost(); cost != 0 {
		t.Errorf("LiveCost after reap = %v, want 0", cost)
	}
	if rt.Snapshot().TotalCost <= 0 {
		t.Error("terminated containers accrued no cost")
	}
}

func TestMinWarmFloor(t *testing.T) {
	app := testChain([]float64{0.5}, 1.0)
	driver := &staticDriver{dir: func(id dag.NodeID) simulator.Directive {
		return simulator.Directive{
			Config: hardware.Config{Kind: hardware.CPU, Cores: 4},
			Policy: coldstart.KeepAlive, KeepAlive: 5,
			Batch: 1, Instances: 2, MinWarm: 1,
		}
	}}
	rt, fake := newTestRuntime(t, Config{App: app, SLA: 10}, driver)

	res := mustInvoke(t, rt)
	_ = await(t, rt, fake, res)
	// Idle timeouts keep re-arming at the MinWarm floor: the instance must
	// still be live long after the 5s keep-alive.
	stepUntil(t, rt, fake, func() bool { return fake.Now() > 30 })
	if n := rt.LiveContainers()["F1"]; n != 1 {
		t.Errorf("live F1 instances = %d, want MinWarm floor of 1", n)
	}
}

func mustInvoke(t *testing.T, rt *Runtime) <-chan Result {
	t.Helper()
	ch, err := rt.Invoke(context.Background())
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	return ch
}

func TestBatchLingerWindow(t *testing.T) {
	app := testChain([]float64{0.5}, 1.0)
	rt, fake := newTestRuntime(t, Config{App: app, SLA: 10, BatchLinger: 0.3}, keepAliveDriver(2))

	// Warm-up: the cold request pays init + exec with no linger (no idle
	// instance exists, so dispatch goes through the launch path).
	res0 := await(t, rt, fake, mustInvoke(t, rt))
	if want := 1.5; !near(res0.E2E, want, 1e-9) {
		t.Fatalf("cold E2E = %v, want %v", res0.E2E, want)
	}

	// A lone request against an idle warm instance is held for the full
	// aggregation window, then dispatched as a partial batch.
	resA := await(t, rt, fake, mustInvoke(t, rt))
	if want := 0.3 + 0.5; !near(resA.E2E, want, 1e-9) {
		t.Errorf("lingered E2E = %v, want %v", resA.E2E, want)
	}

	// Two requests arriving together fill the batch: dispatch is immediate
	// and both finish in one execution.
	chB := mustInvoke(t, rt)
	chC := mustInvoke(t, rt)
	resB := await(t, rt, fake, chB)
	resC := await(t, rt, fake, chC)
	for _, r := range []Result{resB, resC} {
		if want := 0.5; !near(r.E2E, want, 1e-9) {
			t.Errorf("full-batch E2E = %v, want %v", r.E2E, want)
		}
	}

	st := rt.Snapshot()
	if st.Executions != 3 || st.BatchSum != 4 {
		t.Errorf("Executions=%d BatchSum=%d, want 3 and 4 (batches of 1,1,2)",
			st.Executions, st.BatchSum)
	}
}

func TestReactivePrewarmOverlapsUpstream(t *testing.T) {
	app := testChain([]float64{0.1, 0.2, 0.3}, 1.0)
	driver := &staticDriver{dir: func(id dag.NodeID) simulator.Directive {
		d := simulator.Directive{
			Config: hardware.Config{Kind: hardware.CPU, Cores: 4},
			Policy: coldstart.KeepAlive, KeepAlive: 60,
			Batch: 1, Instances: 2,
		}
		if id == "F2" {
			// Pre-warm F2 on arrival, timed for its input at +0.1s with a
			// 1s estimated init: initialization starts immediately and
			// completes before F1's output lands.
			d.PrewarmOnArrival = true
			d.PathOffset = 0.1
			d.PrewarmLead = 1.0
		}
		return d
	}}
	rt, fake := newTestRuntime(t, Config{App: app, SLA: 10}, driver)

	res := await(t, rt, fake, mustInvoke(t, rt))
	// F1 cold (1.0+0.1); F2's init overlapped F1 entirely, so it only pays
	// exec (0.2); F3 cold (1.0+0.3).
	want := 1.0 + 0.1 + 0.2 + 1.0 + 0.3
	if !near(res.E2E, want, 1e-9) {
		t.Errorf("E2E with reactive pre-warm = %v, want %v", res.E2E, want)
	}
}

func TestExecFaultRetriesThenFails(t *testing.T) {
	app := testChain([]float64{0.5}, 1.0)
	driver := &staticDriver{dir: func(id dag.NodeID) simulator.Directive {
		return simulator.Directive{
			Config: hardware.Config{Kind: hardware.CPU, Cores: 4},
			Policy: coldstart.KeepAlive, KeepAlive: 60,
			Batch: 1, Instances: 2,
			Retry: faults.RetryPolicy{MaxAttempts: 2, BaseBackoff: 0.2},
		}
	}}
	plan := &faults.Plan{
		PerFunction: map[string]faults.Rates{"F1": {ExecFail: 1}},
		Seed:        7,
	}
	rt, fake := newTestRuntime(t, Config{App: app, SLA: 10, Faults: plan}, driver)

	res := await(t, rt, fake, mustInvoke(t, rt))
	if !res.Failed {
		t.Fatalf("request should fail after exhausting retries, got %+v", res)
	}
	st := rt.Snapshot()
	if st.ExecFailures != 2 || st.Retries != 1 || st.FailedInvocations != 1 {
		t.Errorf("ExecFailures=%d Retries=%d FailedInvocations=%d, want 2/1/1",
			st.ExecFailures, st.Retries, st.FailedInvocations)
	}
	if got := rt.Inflight(); got != 0 {
		t.Errorf("Inflight after failure = %d, want 0", got)
	}
}

func TestAdmissionControlAndLifecycle(t *testing.T) {
	app := testChain([]float64{0.5}, 1.0)
	rt, fake := newTestRuntime(t, Config{App: app, SLA: 10, MaxInflight: 1}, keepAliveDriver(1))

	ch := mustInvoke(t, rt)
	if _, err := rt.Invoke(context.Background()); err != ErrOverloaded {
		t.Errorf("second Invoke err = %v, want ErrOverloaded", err)
	}
	if got := rt.Rejected(); got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	_ = await(t, rt, fake, ch)

	// Drain with nothing inflight resolves immediately; afterwards the
	// runtime refuses new work.
	if err := rt.Drain(time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !rt.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if _, err := rt.Invoke(context.Background()); err != ErrDraining {
		t.Errorf("Invoke while draining err = %v, want ErrDraining", err)
	}
	rt.Close()
	if _, err := rt.Invoke(context.Background()); err != ErrClosed {
		t.Errorf("Invoke after Close err = %v, want ErrClosed", err)
	}
}

func TestWindowCadenceAndCounts(t *testing.T) {
	app := testChain([]float64{0.1}, 1.0)
	rt, fake := newTestRuntime(t, Config{App: app, SLA: 10, Window: 1}, keepAliveDriver(1))

	chA := mustInvoke(t, rt)
	chB := mustInvoke(t, rt)
	_ = await(t, rt, fake, chA)
	_ = await(t, rt, fake, chB)
	stepUntil(t, rt, fake, func() bool { return len(rt.CountsHistoryLocked()) >= 3 })
	counts := rt.CountsHistoryLocked()
	if counts[0] != 2 {
		t.Errorf("first window count = %d, want 2", counts[0])
	}
	for _, c := range counts[1:] {
		if c != 0 {
			t.Errorf("later window counts = %v, want zeros after index 0", counts)
			break
		}
	}
	if got := len(rt.ArrivalTimesLocked()); got != 2 {
		t.Errorf("arrival times = %d, want 2", got)
	}
}

func TestConfigValidation(t *testing.T) {
	driver := keepAliveDriver(1)
	app := testChain([]float64{0.1}, 1.0)
	cases := []Config{
		{},                          // no app
		{App: app, SLA: -1},         // negative SLA
		{App: app, Window: -1},      // negative window
		{App: app, BatchLinger: -1}, // negative linger
	}
	for i, cfg := range cases {
		if _, err := New(cfg, driver); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
	if _, err := New(Config{App: app}, nil); err == nil {
		t.Error("New accepted nil driver")
	}
}

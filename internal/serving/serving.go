// Package serving is the online serving runtime: the wall-clock counterpart
// of the deterministic discrete-event simulator. It executes the same
// container state machine — cold starts, keep-alive timers, pre-warms,
// batching, retries, hedging — against real time, driven by real concurrent
// requests instead of a replayed trace.
//
// The Runtime implements simulator.ControlPlane, so SMIless and every
// baseline Driver runs unchanged on a live gateway: the controller that
// plans against the simulator plans against production identically. Time is
// abstracted behind clock.Scheduler (internal/clock): a Wall clock in
// production, a ScaledWall for accelerated replays, and a Fake in tests, so
// the concurrent integration tests cover minutes of model latency in
// milliseconds without sleeping.
//
// # Architecture
//
// The runtime keeps the simulator's event-loop architecture rather than
// spawning a goroutine per timer: every future transition (init completion,
// execution completion, idle timeout, batch-linger expiry, decision window,
// retry, hedge, injected failure) is an event on a deadline-ordered heap,
// and a single scheduler goroutine sleeps on clock.Scheduler.After until
// the earliest deadline, then drains everything due under the runtime
// mutex. Invoke enqueues arrivals inline and wakes the loop. The design
// gives three properties for free:
//
//   - the per-request state machine is a line-for-line port of the
//     simulator's (internal/simulator), so simulated and live behaviour
//     stay in lockstep;
//   - tracing.Recorder and faults.Injector, which are single-threaded by
//     contract, are only ever touched under the mutex;
//   - with a Fake clock the loop processes each event exactly at its
//     deadline, so integration tests can assert latencies to float
//     precision.
//
// One simulator feature is deliberately not ported: per-node capacity and
// GPU MPS contention (the live runtime assumes an elastic substrate, so
// CapacityBlocked accounting is simulator-only). Fault injection is
// supported through the same faults.Plan rates; Outage entries (the
// simulator's instant-detection node outages) are ignored, but NodeFault
// entries (crash, partition) are realized against the node layer below.
//
// # Multi-node control plane
//
// With Config.Nodes > 1 the runtime runs N node agents under a thin
// placement layer (node.go): new containers land on their function's
// locality home node and overflow to the less loaded of two sampled healthy
// peers (power of two choices). A deterministic health-gossip failure
// detector, ticking on the same event loop, walks nodes through
// up → suspect → down as heartbeats go missing and recovers them when
// heartbeats resume. When a node is declared down, its in-flight requests
// fail over to live peers under first-completion-wins idempotency — no
// request is lost or duplicated, even when a healed partition replays the
// original completions. Node crashes, restarts and partitions can be
// scheduled via faults.Plan.NodeFaults, injected live through
// KillNode/RestartNode/SetPartitioned, and observed via NodeInfos.
//
// # Batching (§V-D)
//
// Beyond the simulator's passive aggregation (requests joining a busy or
// initializing instance's next batch), the runtime adds an active batch
// window: when a function's directive asks for Batch > 1 and a warm
// instance is idle, dispatch is held for up to Config.BatchLinger seconds
// waiting for the batch to fill. The window closes early the moment the
// batch is full; a partial batch dispatches when it expires.
package serving

import (
	"errors"
	"fmt"

	"smiless/internal/apps"
	"smiless/internal/clock"
	"smiless/internal/faults"
	"smiless/internal/hardware"
	"smiless/internal/placement"
	"smiless/internal/simulator"
	"smiless/internal/tracing"
)

// Config parameterizes a serving runtime.
type Config struct {
	// App is the application under management.
	App *apps.Application
	// SLA is the end-to-end latency bound in seconds (default 2).
	SLA float64
	// Window is the decision-window length in seconds (default 1): the
	// cadence at which the driver's OnWindow runs.
	Window float64
	// Seed drives all sampled executor timings.
	Seed int64
	// BatchLinger is the batch aggregation window in seconds: how long a
	// function with Batch > 1 holds dispatch onto an idle instance waiting
	// for the batch to fill. Zero disables active aggregation (batches
	// still form passively on busy or initializing instances, as in the
	// simulator).
	BatchLinger float64
	// MaxInflight caps concurrently admitted requests; further Invoke
	// calls fail with ErrOverloaded until one resolves (default 256).
	MaxInflight int
	// QueueCap bounds each entry function's ready queue; arrivals that
	// would overflow it are rejected with ErrOverloaded (default 1024).
	QueueCap int
	// Pricing holds unit costs for the cost ledger (default
	// hardware.DefaultPricing).
	Pricing hardware.Pricing
	// Faults optionally injects failures — container crashes, stragglers,
	// timeouts — through the same plan the simulator uses. Outage entries
	// (node placement) are simulator-only and ignored here.
	Faults *faults.Plan
	// Recorder, when non-nil, records per-invocation span trees and
	// critical-path breakdowns from the live run, exportable as a Chrome
	// trace. All recorder calls are serialized under the runtime mutex.
	Recorder *tracing.Recorder
	// Clock is the time source and timer substrate (default a fresh
	// clock.Wall). Inject a clock.Fake in tests or a clock.ScaledWall for
	// accelerated replays.
	Clock clock.Scheduler
	// Nodes is the number of node agents the executor pool is spread over
	// (default 1: the classic single-pool runtime, byte-for-byte
	// unchanged). With Nodes > 1, placement routes by locality with
	// power-of-two-choices overflow and the health-gossip failure detector
	// runs.
	Nodes int
	// GossipInterval is the failure-detector tick period in seconds
	// (default 0.25). SuspectAfter and DownAfter are how long a node must
	// miss heartbeats before it is suspected (default 2×GossipInterval)
	// and declared down with failover (default 2×SuspectAfter).
	GossipInterval float64
	SuspectAfter   float64
	DownAfter      float64
	// LocalitySlack is how many more live containers the home node may
	// carry than the least-loaded healthy peer before a launch overflows
	// (default 2).
	LocalitySlack int
	// DefaultDeadline, when positive, bounds every request's end-to-end
	// latency in model seconds: requests still unresolved at the deadline
	// fail with Result.DeadlineExceeded. Per-request deadlines via
	// InvokeWithDeadline override it.
	DefaultDeadline float64
	// Placement selects the node-placement policy, sharing the simulator's
	// enum: first-fit home placement (default), P2C locality overflow,
	// affinity packing, or interference spreading. Only consulted with
	// Nodes > 1.
	Placement simulator.PlacementPolicy
	// Interference is the optional co-location interference model
	// (internal/placement): sampled init and inference durations are
	// inflated by the model's slowdown over a container's node
	// co-residents. Nil — or a model whose slowdown is 1 everywhere —
	// leaves every timing byte-identical to an interference-blind run.
	Interference *placement.Model
	// PriceTrace is the optional spot-price scenario: container lifetimes
	// are billed at the in-effect multiplier and the trace's preemption
	// windows withdraw nodes (containers evicted, work failed over). Nil
	// bills static prices; FlatTrace(1) is bit-identical to nil.
	PriceTrace *hardware.PriceTrace
}

// withDefaults validates cfg and fills defaults, mirroring simulator.New.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.App == nil || cfg.App.Graph == nil || cfg.App.Graph.Len() == 0 {
		return cfg, &ConfigError{Field: "App", Reason: "must have a non-empty graph"}
	}
	if cfg.SLA < 0 {
		return cfg, &ConfigError{Field: "SLA", Reason: "must not be negative"}
	}
	if cfg.Window < 0 {
		return cfg, &ConfigError{Field: "Window", Reason: "must not be negative"}
	}
	if cfg.BatchLinger < 0 {
		return cfg, &ConfigError{Field: "BatchLinger", Reason: "must not be negative"}
	}
	if cfg.SLA <= 0 {
		cfg.SLA = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	if cfg.Pricing == (hardware.Pricing{}) {
		cfg.Pricing = hardware.DefaultPricing
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewWall()
	}
	if cfg.Nodes < 0 {
		return cfg, &ConfigError{Field: "Nodes", Reason: "must not be negative"}
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 1
	}
	if cfg.GossipInterval < 0 || cfg.SuspectAfter < 0 || cfg.DownAfter < 0 {
		return cfg, &ConfigError{Field: "GossipInterval", Reason: "detector timings must not be negative"}
	}
	if cfg.GossipInterval == 0 { //lint:allow floateq zero means "unset", not computed
		cfg.GossipInterval = 0.25
	}
	if cfg.SuspectAfter == 0 { //lint:allow floateq zero means "unset", not computed
		cfg.SuspectAfter = 2 * cfg.GossipInterval
	}
	if cfg.DownAfter <= cfg.SuspectAfter {
		cfg.DownAfter = 2 * cfg.SuspectAfter
	}
	if cfg.LocalitySlack <= 0 {
		cfg.LocalitySlack = 2
	}
	if cfg.DefaultDeadline < 0 {
		return cfg, &ConfigError{Field: "DefaultDeadline", Reason: "must not be negative"}
	}
	if cfg.Faults != nil {
		for _, nf := range cfg.Faults.NodeFaults {
			if nf.Node < 0 || nf.Node >= cfg.Nodes {
				return cfg, &ConfigError{Field: "Faults",
					Reason: fmt.Sprintf("NodeFault node %d out of range [0,%d)", nf.Node, cfg.Nodes)}
			}
		}
	}
	if cfg.PriceTrace != nil {
		for _, w := range cfg.PriceTrace.Preemptions {
			if w.Node < 0 || w.Node >= cfg.Nodes {
				return cfg, &ConfigError{Field: "PriceTrace",
					Reason: fmt.Sprintf("preemption node %d out of range [0,%d)", w.Node, cfg.Nodes)}
			}
			if w.End <= w.Start {
				return cfg, &ConfigError{Field: "PriceTrace",
					Reason: fmt.Sprintf("preemption window on node %d must have End > Start", w.Node)}
			}
		}
	}
	return cfg, nil
}

// ConfigError reports an invalid Config field passed to New.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("serving: invalid config: %s %s", e.Field, e.Reason)
}

// Admission and lifecycle errors returned by Invoke.
var (
	// ErrOverloaded means admission control rejected the request: the
	// inflight cap or an entry queue bound was hit. Gateways map it to
	// HTTP 429.
	ErrOverloaded = errors.New("serving: overloaded")
	// ErrDraining means the runtime is draining ahead of shutdown and no
	// longer admits work. Gateways map it to HTTP 503.
	ErrDraining = errors.New("serving: draining")
	// ErrClosed means the runtime has been closed.
	ErrClosed = errors.New("serving: closed")
)

// Result is the terminal outcome of one admitted request.
type Result struct {
	// ReqID is the runtime-assigned request id (matches tracing spans).
	ReqID int
	// Arrival and End are model-time seconds since the runtime's epoch.
	Arrival float64
	End     float64
	// E2E is End − Arrival.
	E2E float64
	// Failed reports that the request did not complete: retries exhausted,
	// deadline exceeded, or abandoned by its caller.
	Failed bool
	// DeadlineExceeded reports that the request's per-request deadline
	// elapsed before it resolved (implies Failed).
	DeadlineExceeded bool
	// Abandoned reports that the caller's context was cancelled before the
	// request resolved (implies Failed).
	Abandoned bool
	// SLAViolated reports E2E > SLA for completed requests.
	SLAViolated bool
}

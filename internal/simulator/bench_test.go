package simulator

import (
	"testing"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/mathx"
	"smiless/internal/trace"
)

// BenchmarkRun measures a full fault-free simulation of a three-stage
// pipeline under a diurnal trace — the hot path every experiment drives.
func BenchmarkRun(b *testing.B) {
	app := apps.Pipeline(3)
	tr := trace.Diurnal(mathx.NewRand(7), 0.3, 0.5, 300, 600)
	if tr.Len() == 0 {
		b.Fatal("empty benchmark trace")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := &staticDriver{directive: func(dag.NodeID) Directive {
			return Directive{
				Config: cpu(4), Policy: coldstart.KeepAlive,
				KeepAlive: 30, Batch: 4, Instances: 4,
			}
		}}
		sim := MustNew(Config{App: app, SLA: 60, Seed: 1}, d)
		sim.MustRun(tr)
	}
}

package simulator

import (
	"fmt"
	"math/rand"

	"smiless/internal/hardware"
)

// nodeHealth is the control plane's view of one node, advanced by the
// deterministic gossip failure detector: Up → Suspect once SuspectAfter
// passes without a heartbeat, Suspect → Down after DownAfter, and back to
// Up once heartbeats resume.
type nodeHealth int

const (
	nodeUp nodeHealth = iota
	nodeSuspect
	nodeDown
)

// String names the health state for traces and reports.
func (h nodeHealth) String() string {
	switch h {
	case nodeUp:
		return "up"
	case nodeSuspect:
		return "suspect"
	case nodeDown:
		return "down"
	}
	return "unknown"
}

// nodeState is one node agent's state machine: local free capacity plus the
// liveness bookkeeping the gossip failure detector drives. health is what
// the control plane believes; alive and partitioned are ground truth the
// control plane cannot see directly.
type nodeState struct {
	spec      hardware.NodeSpec
	freeCores int
	freeGPU   int // in percent (10% MPS slices)

	health      nodeHealth
	alive       bool // process running (false between crash and restart)
	partitioned bool // unreachable: completions held until heal
	lastBeat    float64
	downSince   float64
	// detectorDown marks a down verdict issued by the gossip detector (as
	// opposed to a scheduled legacy Outage): only those verdicts are
	// reversed when heartbeats resume.
	detectorDown bool

	// held buffers node-side events (init/exec completions and crashes)
	// that fired while the node was partitioned; they are replayed in
	// order when the partition heals.
	held []*event
}

// placeable reports whether the control plane will route new work to the
// node. Suspect nodes are skipped too: placement avoids doubtful nodes even
// before the detector commits to down.
func (n *nodeState) placeable() bool { return n.health == nodeUp }

// fits reports whether the node has free capacity for cfg.
func (n *nodeState) fits(cfg hardware.Config) bool {
	switch cfg.Kind {
	case hardware.CPU:
		return n.freeCores >= cfg.Cores
	case hardware.GPU:
		return n.freeGPU >= cfg.GPUShare
	}
	return false
}

// take reserves cfg's resources on the node.
func (n *nodeState) take(cfg hardware.Config) {
	switch cfg.Kind {
	case hardware.CPU:
		n.freeCores -= cfg.Cores
	case hardware.GPU:
		n.freeGPU -= cfg.GPUShare
	}
}

// freeFor returns the free capacity relevant to cfg's kind, the p2c load
// signal (more free = less loaded).
func (n *nodeState) freeFor(cfg hardware.Config) int {
	if cfg.Kind == hardware.GPU {
		return n.freeGPU
	}
	return n.freeCores
}

// clusterState is the thin placement layer over the per-node state
// machines.
type clusterState struct {
	nodes []*nodeState
}

func newClusterState(spec hardware.ClusterSpec) *clusterState {
	c := &clusterState{}
	for _, n := range spec.Nodes {
		c.nodes = append(c.nodes, &nodeState{
			spec:      n,
			freeCores: n.Cores,
			freeGPU:   n.GPUs * 100,
			health:    nodeUp,
			alive:     true,
		})
	}
	return c
}

// len returns the node count.
func (c *clusterState) len() int { return len(c.nodes) }

// isDown reports whether the control plane considers node i out of service.
func (c *clusterState) isDown(i int) bool { return c.nodes[i].health == nodeDown }

// setDown marks node i in or out of service with instant detection (the
// legacy Outage path). Capacity accounting is untouched: evicted containers
// release through the normal path and the node returns with its full
// capacity when the outage ends.
func (c *clusterState) setDown(i int, down bool) {
	if down {
		c.nodes[i].health = nodeDown
	} else {
		c.nodes[i].health = nodeUp
	}
}

// allocate finds a placeable node with capacity for cfg (first fit) and
// reserves it, returning the node index or false when the cluster is full.
func (c *clusterState) allocate(cfg hardware.Config) (int, bool) {
	for i, n := range c.nodes {
		if !n.placeable() {
			continue
		}
		if n.fits(cfg) {
			n.take(cfg)
			return i, true
		}
	}
	return -1, false
}

// allocateP2C places cfg by locality with power-of-two-choices overflow:
// the function's home node keeps the launch while it has capacity;
// otherwise two placeable candidates are sampled from prng and the less
// loaded one (more free capacity of cfg's kind, ties to the lower index)
// takes it. forwarded reports an off-home placement.
func (c *clusterState) allocateP2C(cfg hardware.Config, home int, prng *rand.Rand) (node int, forwarded, ok bool) {
	if h := c.nodes[home]; h.placeable() && h.fits(cfg) {
		h.take(cfg)
		return home, false, true
	}
	cand := make([]int, 0, len(c.nodes))
	for i, n := range c.nodes {
		if i != home && n.placeable() && n.fits(cfg) {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1, false, false
	}
	best := cand[0]
	if len(cand) > 1 {
		a, b := cand[prng.Intn(len(cand))], cand[prng.Intn(len(cand))]
		best = a
		if c.nodes[b].freeFor(cfg) > c.nodes[a].freeFor(cfg) ||
			(c.nodes[b].freeFor(cfg) == c.nodes[a].freeFor(cfg) && b < a) {
			best = b
		}
	}
	c.nodes[best].take(cfg)
	return best, true, true
}

// takeOn reserves cfg's resources on a specific node. The caller has
// already verified the node is placeable and fits cfg (the affinity
// policies score candidates before committing).
func (c *clusterState) takeOn(i int, cfg hardware.Config) {
	c.nodes[i].take(cfg)
}

// release returns cfg's resources to node i.
func (c *clusterState) release(i int, cfg hardware.Config) {
	n := c.nodes[i]
	switch cfg.Kind {
	case hardware.CPU:
		n.freeCores += cfg.Cores
		if n.freeCores > n.spec.Cores {
			panic(fmt.Sprintf("simulator: core over-release on node %d", i))
		}
	case hardware.GPU:
		n.freeGPU += cfg.GPUShare
		if n.freeGPU > n.spec.GPUs*100 {
			panic(fmt.Sprintf("simulator: GPU over-release on node %d", i))
		}
	}
}

// usedCores returns total cores currently allocated.
func (c *clusterState) usedCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.spec.Cores - n.freeCores
	}
	return total
}

// usedGPU returns total GPU percentage currently allocated.
func (c *clusterState) usedGPU() int {
	total := 0
	for _, n := range c.nodes {
		total += n.spec.GPUs*100 - n.freeGPU
	}
	return total
}

// usedGPUOnNode returns the GPU percentage currently allocated on node i.
func (c *clusterState) usedGPUOnNode(i int) int {
	return c.nodes[i].spec.GPUs*100 - c.nodes[i].freeGPU
}

// HomeNode maps a function name onto its locality home node with a 32-bit
// FNV-1a hash — stable across runs and platforms. Shared with the serving
// runtime so simulated and live placement agree on homes.
func HomeNode(fn string, nodes int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(fn); i++ {
		h ^= uint32(fn[i])
		h *= prime32
	}
	return int(h % uint32(nodes))
}

package simulator

import (
	"fmt"

	"smiless/internal/hardware"
)

// clusterState tracks per-node free capacity: CPU cores and GPU shares (in
// 10% MPS slices).
type clusterState struct {
	spec      hardware.ClusterSpec
	freeCores []int
	freeGPU   []int  // in percent
	down      []bool // node outage in progress: no new allocations
}

func newClusterState(spec hardware.ClusterSpec) *clusterState {
	c := &clusterState{spec: spec}
	for _, n := range spec.Nodes {
		c.freeCores = append(c.freeCores, n.Cores)
		c.freeGPU = append(c.freeGPU, n.GPUs*100)
		c.down = append(c.down, false)
	}
	return c
}

// len returns the node count.
func (c *clusterState) len() int { return len(c.spec.Nodes) }

// isDown reports whether node i is out of service.
func (c *clusterState) isDown(i int) bool { return c.down[i] }

// setDown marks node i in or out of service. Capacity accounting is
// untouched: evicted containers release through the normal path and the
// node returns with its full capacity when the outage ends.
func (c *clusterState) setDown(i int, down bool) { c.down[i] = down }

// allocate finds a node with capacity for cfg (first fit) and reserves it,
// returning the node index or false when the cluster is full.
func (c *clusterState) allocate(cfg hardware.Config) (int, bool) {
	for i := range c.freeCores {
		if c.down[i] {
			continue
		}
		switch cfg.Kind {
		case hardware.CPU:
			if c.freeCores[i] >= cfg.Cores {
				c.freeCores[i] -= cfg.Cores
				return i, true
			}
		case hardware.GPU:
			if c.freeGPU[i] >= cfg.GPUShare {
				c.freeGPU[i] -= cfg.GPUShare
				return i, true
			}
		}
	}
	return -1, false
}

// release returns cfg's resources to node i.
func (c *clusterState) release(i int, cfg hardware.Config) {
	switch cfg.Kind {
	case hardware.CPU:
		c.freeCores[i] += cfg.Cores
		if c.freeCores[i] > c.spec.Nodes[i].Cores {
			panic(fmt.Sprintf("simulator: core over-release on node %d", i))
		}
	case hardware.GPU:
		c.freeGPU[i] += cfg.GPUShare
		if c.freeGPU[i] > c.spec.Nodes[i].GPUs*100 {
			panic(fmt.Sprintf("simulator: GPU over-release on node %d", i))
		}
	}
}

// usedCores returns total cores currently allocated.
func (c *clusterState) usedCores() int {
	total := 0
	for i, n := range c.spec.Nodes {
		total += n.Cores - c.freeCores[i]
	}
	return total
}

// usedGPU returns total GPU percentage currently allocated.
func (c *clusterState) usedGPU() int {
	total := 0
	for i, n := range c.spec.Nodes {
		total += n.GPUs*100 - c.freeGPU[i]
	}
	return total
}

// usedGPUOnNode returns the GPU percentage currently allocated on node i.
func (c *clusterState) usedGPUOnNode(i int) int {
	return c.spec.Nodes[i].GPUs*100 - c.freeGPU[i]
}

package simulator

import (
	"smiless/internal/apps"
	"smiless/internal/dag"
	"smiless/internal/tracing"
)

// ControlPlane is the surface a Driver programs against: the full
// driver-facing API of the execution substrate. Two implementations exist —
// *Simulator (virtual time, discrete events, deterministic) and the online
// serving runtime in internal/serving (wall-clock time, real goroutines) —
// so SMIless and every baseline drive simulated and live clusters with the
// same code. Times are float64 seconds since the run's epoch, matching
// internal/clock.Clock.
type ControlPlane interface {
	// Now returns the current time in seconds since the run started.
	Now() float64
	// App returns the application under management.
	App() *apps.Application
	// SLA returns the run's end-to-end latency bound in seconds.
	SLA() float64
	// Window returns the decision-window length in seconds.
	Window() float64

	// SetDirective installs the per-function policy; GetDirective reads it
	// back.
	SetDirective(id dag.NodeID, d Directive)
	GetDirective(id dag.NodeID) Directive

	// CountsHistory returns completed per-window arrival counts so far;
	// ArrivalTimes returns every application arrival timestamp observed.
	CountsHistory() []int
	ArrivalTimes() []float64

	// QueueLen is the ready-but-undispatched backlog of one function;
	// LiveInstances the number of live containers.
	QueueLen(id dag.NodeID) int
	LiveInstances(id dag.NodeID) int

	// EnsureConfigInstance, EnsureInstances, HasWarmMatching and
	// RetireMismatched manage the per-function fleet across re-plans.
	EnsureConfigInstance(id dag.NodeID)
	EnsureInstances(id dag.NodeID, n int)
	HasWarmMatching(id dag.NodeID) bool
	RetireMismatched(id dag.NodeID)

	// SchedulePrewarm asks for a warm instance of fn at time at.
	SchedulePrewarm(id dag.NodeID, at float64)

	// FunctionCost returns the cost attributable to one function so far;
	// AccruedCost the cost accrued by still-live containers.
	FunctionCost(id dag.NodeID) float64
	AccruedCost() float64
	// Stats exposes the run statistics accumulated so far.
	Stats() *RunStats
	// TraceRecorder returns the attached span recorder, or nil.
	TraceRecorder() *tracing.Recorder

	// FaultsEnabled reports whether fault injection is active; the
	// resilience feed below is only meaningful when it is.
	FaultsEnabled() bool
	ExecLatencyQuantile(id dag.NodeID, p float64) float64
	FnResilience(id dag.NodeID) (initFails, execFails, successes int)
}

// *Simulator is the reference ControlPlane implementation.
var _ ControlPlane = (*Simulator)(nil)

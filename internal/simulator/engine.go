// Package simulator is the serverless-cluster substrate replacing the
// paper's OpenFaaS/Kubernetes testbed (§VI): a discrete-event simulation of
// container lifecycles (initialization, inference, idle keep-alive,
// termination), DAG request routing, batching agents, MPS-style fractional
// GPU allocation, per-second billing, and pre-warm timers.
//
// The simulator is policy-agnostic: a Driver (the SMIless controller or one
// of the baseline systems) installs per-function Directives and may schedule
// pre-warm events; the simulator realizes them against sampled ground-truth
// timings and accounts cost exactly as Eq. (3) does — billed
// instance-seconds times unit cost.
//
//lint:deterministic
package simulator

import (
	"container/heap"

	"smiless/internal/units"
)

// eventKind discriminates simulator events.
type eventKind int

const (
	evArrival        eventKind = iota // application request arrival
	evInitDone                        // container finished initializing
	evExecDone                        // container finished a batch
	evIdleTimeout                     // keep-alive expired
	evPrewarm                         // scheduled pre-warm point
	evWindow                          // decision-window boundary
	evInitFail                        // injected crash mid-initialization
	evExecFail                        // injected crash mid-execution
	evExecTimeout                     // gateway per-attempt timeout fired
	evHedge                           // hedge point for a slow single execution
	evRetry                           // backed-off retry becomes ready
	evNodeDown                        // node outage begins (cid = node index)
	evNodeUp                          // node outage ends (cid = node index)
	evNodeCrash                       // node process dies silently (cid = node index)
	evNodeRestart                     // crashed node rejoins empty (cid = node index)
	evPartitionStart                  // node becomes unreachable (cid = node index)
	evPartitionEnd                    // partition heals, held completions deliver (cid = node index)
	evGossip                          // health-gossip tick: advance suspect/down/recovered
	evPreempt                         // spot preemption window begins (cid = node index)
	evPreemptEnd                      // preempted capacity returns (cid = node index)
)

// nodeSide reports whether the event is a completion or failure emitted by
// the container's own node — lost with a crashed node, delayed by a
// partition — as opposed to gateway-side timers (timeouts, hedges, idle
// reaping), which the control plane runs regardless of node reachability.
func (e *event) nodeSide() bool {
	switch e.kind {
	case evInitDone, evExecDone, evInitFail, evExecFail:
		return true
	}
	return false
}

// event is one scheduled occurrence. Timestamps are typed simulation time
// (units.Duration since run start) so they cannot silently mix with raw
// millisecond values.
type event struct {
	at   units.Duration
	seq  int // tie-breaker for determinism
	kind eventKind
	// container events (node index for evNodeDown/evNodeUp)
	cid int
	// idle-timer epoch or batch sequence (stale events are ignored)
	epoch int
	// prewarm target function
	fn string
	// retried invocation (evRetry)
	ni *nodeInv
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at { //lint:allow floateq exact tie-break: only bit-identical timestamps fall through to the seq ordering
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

var _ heap.Interface = (*eventHeap)(nil)

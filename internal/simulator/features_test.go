package simulator

import (
	"testing"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/hardware"
	"smiless/internal/trace"
)

func TestMinWarmPinsInstance(t *testing.T) {
	// KeepAlive with a tiny timeout but MinWarm 1: the instance must
	// survive a long idle gap and serve the second request warm.
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{
			Config: cpu(4), Policy: coldstart.KeepAlive,
			KeepAlive: 2, MinWarm: 1, Batch: 1, Instances: 2,
		}
	}}
	tr := &trace.Trace{Horizon: 200, Arrivals: []float64{1, 150}}
	st := runPipeline(t, d, tr, 60)
	if st.Completed != 2 {
		t.Fatalf("completed %d/2", st.Completed)
	}
	// One init per function only: the pinned instance served both.
	if st.Inits != 3 {
		t.Errorf("inits = %d, want 3 (MinWarm keeps instances resident)", st.Inits)
	}
	if st.InitGated > 3 {
		t.Errorf("init-gated = %d: second request should run warm", st.InitGated)
	}
}

func TestMinWarmZeroExpires(t *testing.T) {
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{
			Config: cpu(4), Policy: coldstart.KeepAlive,
			KeepAlive: 2, MinWarm: 0, Batch: 1, Instances: 2,
		}
	}}
	tr := &trace.Trace{Horizon: 200, Arrivals: []float64{1, 150}}
	st := runPipeline(t, d, tr, 60)
	if st.Inits != 6 {
		t.Errorf("inits = %d, want 6 (instances expire without MinWarm)", st.Inits)
	}
}

// ensureDriver pre-scales at a fixed time.
type ensureDriver struct {
	at float64
	n  int
}

func (d *ensureDriver) Name() string { return "ensure" }
func (d *ensureDriver) Setup(s ControlPlane) {
	for _, id := range s.App().Graph.Nodes() {
		s.SetDirective(id, Directive{
			Config: cpu(2), Policy: coldstart.KeepAlive,
			KeepAlive: 120, Batch: 1, Instances: 8,
		})
	}
}
func (d *ensureDriver) OnWindow(s ControlPlane, now float64) {
	if now == d.at {
		for _, id := range s.App().Graph.Nodes() {
			s.EnsureInstances(id, d.n)
		}
	}
}

func TestEnsureInstancesPreScales(t *testing.T) {
	app := apps.Pipeline(1)
	drv := &ensureDriver{at: 10, n: 4}
	sim := MustNew(Config{App: app, SLA: 60, Seed: 9}, drv)
	st := sim.MustRun(&trace.Trace{Horizon: 60, Arrivals: []float64{30}})
	if st.Completed != 1 {
		t.Fatalf("completed %d/1", st.Completed)
	}
	if st.Inits != 4 {
		t.Errorf("inits = %d, want 4 (pre-scaled)", st.Inits)
	}
	// The request at t=30 should run warm (instances warmed at ~12).
	if st.InitGated != 0 {
		t.Errorf("init-gated = %d, want 0", st.InitGated)
	}
}

func TestEnsureInstancesRespectsCap(t *testing.T) {
	app := apps.Pipeline(1)
	drv := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{Config: cpu(1), Policy: coldstart.KeepAlive, KeepAlive: 60, Batch: 1, Instances: 2}
	}}
	sim := MustNew(Config{App: app, SLA: 60, Seed: 9}, drv)
	drv.Setup(sim) // install directives before using the API directly
	sim.EnsureInstances(app.Graph.Nodes()[0], 10)
	if got := sim.LiveInstances(app.Graph.Nodes()[0]); got != 2 {
		t.Errorf("live = %d, want capped at 2", got)
	}
}

func TestPrewarmSkipsBusyOnlyForKeepAlive(t *testing.T) {
	// Under Prewarm policy a busy instance terminates after use, so a
	// pre-warm while busy must still launch a replacement.
	app := apps.Pipeline(1)
	id := app.Graph.Nodes()[0]
	drv := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{Config: cpu(1), Policy: coldstart.Prewarm, Batch: 1, Instances: 4}
	}}
	sim := MustNew(Config{App: app, SLA: 600, Seed: 10}, drv)
	drv.Setup(sim)
	// First request at t=1; its inference on CPU-1c takes ~1.6s, so at
	// t=2 (handled via a prewarm scheduled during busy) a second container
	// must be launched.
	sim.SchedulePrewarm(id, 0)
	st := sim.MustRun(&trace.Trace{Horizon: 60, Arrivals: []float64{3, 4}})
	if st.Completed != 2 {
		t.Fatalf("completed %d/2", st.Completed)
	}
}

func TestSetDirectiveRepumpsQueue(t *testing.T) {
	// Saturate a 1-instance function, then raise the cap via
	// SetDirective: queued work must dispatch without new arrivals.
	app := apps.Pipeline(1)
	id := app.Graph.Nodes()[0]
	var raised bool
	drv := &hookDriver{
		setup: func(s ControlPlane) {
			s.SetDirective(id, Directive{Config: cpu(1), Policy: coldstart.KeepAlive, KeepAlive: 60, Batch: 1, Instances: 1})
		},
		window: func(s ControlPlane, now float64) {
			if now >= 3 && !raised {
				raised = true
				d := s.GetDirective(id)
				d.Instances = 6
				s.SetDirective(id, d)
			}
		},
	}
	arr := []float64{1, 1.1, 1.2, 1.3, 1.4, 1.5}
	sim := MustNew(Config{App: app, SLA: 600, Seed: 11}, drv)
	st := sim.MustRun(&trace.Trace{Horizon: 120, Arrivals: arr})
	if st.Completed != 6 {
		t.Fatalf("completed %d/6", st.Completed)
	}
	// After the cap raise, extra instances must have launched.
	if st.Inits < 2 {
		t.Errorf("inits = %d, want >= 2 (re-pump launched instances)", st.Inits)
	}
}

type hookDriver struct {
	setup  func(ControlPlane)
	window func(ControlPlane, float64)
}

func (d *hookDriver) Name() string         { return "hook" }
func (d *hookDriver) Setup(s ControlPlane) { d.setup(s) }
func (d *hookDriver) OnWindow(s ControlPlane, now float64) {
	if d.window != nil {
		d.window(s, now)
	}
}

func TestAccruedCost(t *testing.T) {
	app := apps.Pipeline(1)
	drv := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{Config: cpu(4), Policy: coldstart.AlwaysOn, Batch: 1, Instances: 1}
	}}
	var mid float64
	probe := &hookDriver{
		setup: drv.Setup,
		window: func(s ControlPlane, now float64) {
			if now == 50 {
				mid = s.AccruedCost()
			}
		},
	}
	st := sim2Run(t, app, probe, &trace.Trace{Horizon: 100, Arrivals: []float64{1}})
	if mid <= 0 {
		t.Error("accrued cost should be positive mid-run with a live container")
	}
	if st.TotalCost <= mid {
		t.Errorf("final cost %v should exceed mid-run accrual %v", st.TotalCost, mid)
	}
}

func sim2Run(t *testing.T, app *apps.Application, d Driver, tr *trace.Trace) *RunStats {
	t.Helper()
	sim := MustNew(Config{App: app, SLA: 600, Seed: 12}, d)
	return sim.MustRun(tr)
}

func TestGPUContentionSlowsCoLocatedSlices(t *testing.T) {
	// Two GPU-50% containers on one GPU with contention enabled must run
	// slower than the same work without contention.
	run := func(contention float64) *RunStats {
		d := &staticDriver{directive: func(dag.NodeID) Directive {
			return Directive{Config: gpu(50), Policy: coldstart.KeepAlive, KeepAlive: 60, Batch: 1, Instances: 2}
		}}
		app := apps.Pipeline(1)
		cluster := hardware.ClusterSpec{Nodes: []hardware.NodeSpec{{Cores: 4, GPUs: 1}}}
		sim := MustNew(Config{App: app, Cluster: cluster, SLA: 60, Seed: 7, GPUContention: contention}, d)
		// Two simultaneous arrivals so both slices run concurrently.
		return sim.MustRun(&trace.Trace{Horizon: 120, Arrivals: []float64{30, 30.001, 60, 60.001}})
	}
	base := run(0)
	cont := run(1.0)
	if base.Completed != 4 || cont.Completed != 4 {
		t.Fatal("incomplete runs")
	}
	if cont.LatencyPercentile(99) <= base.LatencyPercentile(99) {
		t.Errorf("contended p99 %v should exceed uncontended %v",
			cont.LatencyPercentile(99), base.LatencyPercentile(99))
	}
}

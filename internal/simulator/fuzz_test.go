package simulator

import (
	"testing"
	"testing/quick"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/faults"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
	"smiless/internal/trace"
)

// chaosDriver installs random directives and mutates them randomly every
// window: a fuzz harness for the container lifecycle machinery. Whatever
// the policy does, the simulator must preserve its invariants.
type chaosDriver struct {
	seed       int64
	noAlwaysOn bool
	withRetry  bool // randomly attach retry/hedge policies to directives
	r          interface {
		Intn(int) int
		Float64() float64
	}
}

func (d *chaosDriver) Name() string { return "chaos" }

func (d *chaosDriver) randomDirective() Directive {
	cat := hardware.DefaultCatalog()
	policies := []coldstart.Policy{coldstart.Prewarm, coldstart.KeepAlive, coldstart.NoMitigation, coldstart.AlwaysOn}
	minWarm := d.r.Intn(2)
	if d.noAlwaysOn {
		// Liveness mode: no policy may pin resources forever (an
		// AlwaysOn or MinWarm-pinned full-GPU instance starves siblings —
		// a real deadlock that needs eviction, out of scope here).
		policies = policies[:3]
		minWarm = 0
	}
	dir := Directive{
		Config:           cat.Configs[d.r.Intn(cat.Len())],
		Policy:           policies[d.r.Intn(len(policies))],
		KeepAlive:        d.r.Float64() * 20,
		PrewarmLead:      d.r.Float64() * 3,
		PathOffset:       d.r.Float64() * 2,
		PrewarmOnArrival: d.r.Intn(2) == 0,
		Batch:            d.r.Intn(6), // includes 0: normalization must fix
		Instances:        d.r.Intn(5), // includes 0: normalization must fix
		MinWarm:          minWarm,
	}
	if d.withRetry && d.r.Intn(2) == 0 {
		dir.Retry = faults.RetryPolicy{
			MaxAttempts: 1 + d.r.Intn(4),
			Timeout:     0.5 + d.r.Float64()*5,
			BaseBackoff: d.r.Float64() * 0.2,
			MaxBackoff:  1,
			JitterFrac:  d.r.Float64() * 0.5,
		}
		dir.HedgeDelay = d.r.Float64() * 3
	}
	return dir
}

func (d *chaosDriver) Setup(s ControlPlane) {
	d.r = mathx.NewRand(d.seed)
	for _, id := range s.App().Graph.Nodes() {
		s.SetDirective(id, d.randomDirective())
	}
}

func (d *chaosDriver) OnWindow(s ControlPlane, now float64) {
	for _, id := range s.App().Graph.Nodes() {
		switch d.r.Intn(4) {
		case 0:
			s.SetDirective(id, d.randomDirective())
		case 1:
			s.SchedulePrewarm(id, now+d.r.Float64()*10)
		case 2:
			s.EnsureInstances(id, 1+d.r.Intn(3))
		case 3:
			if s.HasWarmMatching(id) {
				s.RetireMismatched(id)
			}
		}
	}
}

// TestChaosInvariants fuzzes the simulator with random policies and checks
// the core invariants: every request completes exactly once, cost is
// non-negative and consistent with its CPU/GPU split, latency samples are
// positive, and the run terminates.
func TestChaosInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		app := apps.All()[r.Intn(3)]
		tr := trace.Poisson(r, 0.05+r.Float64()*0.4, 120)
		if tr.Len() == 0 {
			return true
		}
		sim := MustNew(Config{App: app, SLA: 2, Seed: seed}, &chaosDriver{seed: seed})
		st := sim.MustRun(tr)
		if st.Completed != tr.Len() {
			t.Logf("seed %d: completed %d/%d", seed, st.Completed, tr.Len())
			return false
		}
		if st.TotalCost < 0 || st.CPUCost < 0 || st.GPUCost < 0 {
			return false
		}
		if diff := st.TotalCost - st.CPUCost - st.GPUCost; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		for _, e := range st.E2E {
			if e <= 0 {
				return false
			}
		}
		if st.Violations > len(st.E2E) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestChaosCapacityNeverOversubscribed fuzzes against a tiny cluster and
// checks capacity accounting: allocations never exceed the node totals
// (enforced by panics inside the cluster state on over-release), and all
// requests complete despite capacity blocking. AlwaysOn is excluded here:
// an adversarial policy that parks a full-GPU instance forever while
// another function demands the same GPU is a genuine deadlock no system
// resolves without eviction.
func TestChaosCapacityNeverOversubscribed(t *testing.T) {
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		app := apps.Pipeline(2)
		tr := trace.Poisson(r, 0.2, 90)
		if tr.Len() == 0 {
			return true
		}
		cluster := hardware.ClusterSpec{Nodes: []hardware.NodeSpec{{Cores: 16, GPUs: 1}}}
		sim := MustNew(Config{App: app, Cluster: cluster, SLA: 5, Seed: seed},
			&chaosDriver{seed: seed, noAlwaysOn: true})
		st := sim.MustRun(tr)
		return st.Completed == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomFaultPlan derives a fault schedule from a seed: crash and straggler
// probabilities up to ~0.3, an optional mid-run node outage, and its own
// injection seed.
func randomFaultPlan(r interface {
	Intn(int) int
	Float64() float64
}, horizon float64) *faults.Plan {
	plan := &faults.Plan{
		Default: faults.Rates{
			InitFail:        r.Float64() * 0.3,
			ExecFail:        r.Float64() * 0.25,
			Straggler:       r.Float64() * 0.3,
			StragglerFactor: 2 + r.Float64()*6,
		},
		Seed: int64(r.Intn(1 << 30)),
	}
	if r.Intn(2) == 0 {
		start := r.Float64() * horizon * 0.7
		plan.Outages = []faults.Outage{{Node: 0, Start: start, End: start + 5 + r.Float64()*30}}
	}
	return plan
}

// checkFaultInvariants asserts the conservation laws every faulted run must
// satisfy: each request resolves exactly once (completed xor failed), the
// cost ledger stays consistent, availability is a proper ratio, and the
// recovery counters are sane. Capacity accounting (live counts never
// negative, allocations within node totals) is enforced by panics inside the
// cluster state, so reaching this function at all certifies it.
func checkFaultInvariants(t testing.TB, st *RunStats, requests int) bool {
	t.Helper()
	ok := true
	fail := func(format string, args ...any) {
		t.Logf(format, args...)
		ok = false
	}
	if st.Completed+st.FailedInvocations != requests {
		fail("lost/duplicated requests: completed %d + failed %d != %d",
			st.Completed, st.FailedInvocations, requests)
	}
	if st.TotalCost < 0 || st.CPUCost < 0 || st.GPUCost < 0 {
		fail("negative cost: %v %v %v", st.TotalCost, st.CPUCost, st.GPUCost)
	}
	if diff := st.TotalCost - st.CPUCost - st.GPUCost; diff > 1e-9 || diff < -1e-9 {
		fail("cost split inconsistent: %v != %v + %v", st.TotalCost, st.CPUCost, st.GPUCost)
	}
	if a := st.Availability(); a < 0 || a > 1 {
		fail("availability %v outside [0,1]", a)
	}
	if len(st.E2E) != st.Completed {
		fail("latency samples %d != completed %d", len(st.E2E), st.Completed)
	}
	for _, e := range st.E2E {
		if e <= 0 {
			fail("non-positive E2E latency %v", e)
		}
	}
	if st.Violations > len(st.E2E) {
		fail("violations %d exceed samples %d", st.Violations, len(st.E2E))
	}
	if st.HedgesWon > st.HedgesLaunched {
		fail("hedges won %d exceed launched %d", st.HedgesWon, st.HedgesLaunched)
	}
	for n, v := range map[string]int{
		"retries": st.Retries, "timeouts": st.Timeouts,
		"initFailures": st.InitFailures, "execFailures": st.ExecFailures,
		"stragglers": st.Stragglers, "evicted": st.EvictedContainers,
		"nodeDown": st.NodeDownEvents,
	} {
		if v < 0 {
			fail("negative counter %s = %d", n, v)
		}
	}
	return ok
}

// TestChaosFaultInvariants fuzzes the fault machinery itself: random
// policies (including random retry/hedge directives) against random fault
// schedules. No invocation may be lost or double-completed, and the cost
// ledger must stay consistent.
func TestChaosFaultInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		app := apps.All()[r.Intn(3)]
		tr := trace.Poisson(r, 0.05+r.Float64()*0.4, 120)
		if tr.Len() == 0 {
			return true
		}
		plan := randomFaultPlan(r, 120)
		sim := MustNew(Config{App: app, SLA: 2, Seed: seed, Faults: plan},
			&chaosDriver{seed: seed, withRetry: true})
		st := sim.MustRun(tr)
		return checkFaultInvariants(t, st, tr.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestChaosZeroRatePlanBitCompatible: a fault plan whose rates are all zero
// and that schedules no outages must be indistinguishable from no plan at
// all — the injector must never touch the simulation's random stream.
func TestChaosZeroRatePlanBitCompatible(t *testing.T) {
	f := func(seed int64) bool {
		run := func(plan *faults.Plan) *RunStats {
			r := mathx.NewRand(seed)
			tr := trace.Poisson(r, 0.2, 90)
			sim := MustNew(Config{App: apps.ImageQuery(), SLA: 2, Seed: seed, Faults: plan},
				&chaosDriver{seed: seed})
			return sim.MustRun(tr)
		}
		a := run(nil)
		b := run(&faults.Plan{Seed: seed + 1}) // zero rates: must not enable injection
		return a.TotalCost == b.TotalCost && a.Completed == b.Completed &&
			a.Inits == b.Inits && a.Violations == b.Violations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// FuzzFaultSchedules is the native fuzz entry for the fault machinery:
// arbitrary (seed, rates, outage) tuples must never violate the conservation
// invariants. Run with
//
//	go test -fuzz=FuzzFaultSchedules -fuzztime=30s ./internal/simulator/
func FuzzFaultSchedules(f *testing.F) {
	f.Add(int64(1), 0.05, 0.05, 0.1, false)
	f.Add(int64(2), 0.3, 0.2, 0.3, true)
	f.Add(int64(3), 0.0, 0.0, 0.0, false)
	f.Add(int64(99), 1.0, 1.0, 1.0, true)
	f.Fuzz(func(t *testing.T, seed int64, initF, execF, strag float64, outage bool) {
		clamp := func(v float64) float64 {
			if v != v || v < 0 {
				return 0
			}
			if v > 1 {
				return 1
			}
			return v
		}
		plan := &faults.Plan{
			Default: faults.Rates{
				InitFail:        clamp(initF),
				ExecFail:        clamp(execF),
				Straggler:       clamp(strag),
				StragglerFactor: 4,
			},
			Seed: seed,
		}
		if outage {
			plan.Outages = []faults.Outage{{Node: 0, Start: 30, End: 60}}
		}
		r := mathx.NewRand(seed)
		tr := trace.Poisson(r, 0.3, 90)
		if tr.Len() == 0 {
			return
		}
		sim := MustNew(Config{App: apps.ImageQuery(), SLA: 2, Seed: seed, Faults: plan},
			&chaosDriver{seed: seed, withRetry: true})
		st := sim.MustRun(tr)
		if !checkFaultInvariants(t, st, tr.Len()) {
			t.Fatalf("invariant violated for seed=%d rates=(%v,%v,%v) outage=%v",
				seed, clamp(initF), clamp(execF), clamp(strag), outage)
		}
	})
}

// TestChaosDeterminism: the same chaos seed must reproduce the same run.
func TestChaosDeterminism(t *testing.T) {
	run := func() *RunStats {
		tr := trace.Poisson(mathx.NewRand(99), 0.2, 90)
		sim := MustNew(Config{App: apps.VoiceAssistant(), SLA: 2, Seed: 99}, &chaosDriver{seed: 99})
		return sim.MustRun(tr)
	}
	a, b := run(), run()
	if a.TotalCost != b.TotalCost || a.Inits != b.Inits || a.Violations != b.Violations {
		t.Errorf("chaos run not deterministic: %v/%v %d/%d %d/%d",
			a.TotalCost, b.TotalCost, a.Inits, b.Inits, a.Violations, b.Violations)
	}
}

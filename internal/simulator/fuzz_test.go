package simulator

import (
	"testing"
	"testing/quick"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
	"smiless/internal/trace"
)

// chaosDriver installs random directives and mutates them randomly every
// window: a fuzz harness for the container lifecycle machinery. Whatever
// the policy does, the simulator must preserve its invariants.
type chaosDriver struct {
	seed       int64
	noAlwaysOn bool
	r          interface {
		Intn(int) int
		Float64() float64
	}
}

func (d *chaosDriver) Name() string { return "chaos" }

func (d *chaosDriver) randomDirective() Directive {
	cat := hardware.DefaultCatalog()
	policies := []coldstart.Policy{coldstart.Prewarm, coldstart.KeepAlive, coldstart.NoMitigation, coldstart.AlwaysOn}
	minWarm := d.r.Intn(2)
	if d.noAlwaysOn {
		// Liveness mode: no policy may pin resources forever (an
		// AlwaysOn or MinWarm-pinned full-GPU instance starves siblings —
		// a real deadlock that needs eviction, out of scope here).
		policies = policies[:3]
		minWarm = 0
	}
	return Directive{
		Config:           cat.Configs[d.r.Intn(cat.Len())],
		Policy:           policies[d.r.Intn(len(policies))],
		KeepAlive:        d.r.Float64() * 20,
		PrewarmLead:      d.r.Float64() * 3,
		PathOffset:       d.r.Float64() * 2,
		PrewarmOnArrival: d.r.Intn(2) == 0,
		Batch:            d.r.Intn(6), // includes 0: normalization must fix
		Instances:        d.r.Intn(5), // includes 0: normalization must fix
		MinWarm:          minWarm,
	}
}

func (d *chaosDriver) Setup(s *Simulator) {
	d.r = mathx.NewRand(d.seed)
	for _, id := range s.App().Graph.Nodes() {
		s.SetDirective(id, d.randomDirective())
	}
}

func (d *chaosDriver) OnWindow(s *Simulator, now float64) {
	for _, id := range s.App().Graph.Nodes() {
		switch d.r.Intn(4) {
		case 0:
			s.SetDirective(id, d.randomDirective())
		case 1:
			s.SchedulePrewarm(id, now+d.r.Float64()*10)
		case 2:
			s.EnsureInstances(id, 1+d.r.Intn(3))
		case 3:
			if s.HasWarmMatching(id) {
				s.RetireMismatched(id)
			}
		}
	}
}

// TestChaosInvariants fuzzes the simulator with random policies and checks
// the core invariants: every request completes exactly once, cost is
// non-negative and consistent with its CPU/GPU split, latency samples are
// positive, and the run terminates.
func TestChaosInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		app := apps.All()[r.Intn(3)]
		tr := trace.Poisson(r, 0.05+r.Float64()*0.4, 120)
		if tr.Len() == 0 {
			return true
		}
		sim := New(Config{App: app, SLA: 2, Seed: seed}, &chaosDriver{seed: seed})
		st := sim.Run(tr)
		if st.Completed != tr.Len() {
			t.Logf("seed %d: completed %d/%d", seed, st.Completed, tr.Len())
			return false
		}
		if st.TotalCost < 0 || st.CPUCost < 0 || st.GPUCost < 0 {
			return false
		}
		if diff := st.TotalCost - st.CPUCost - st.GPUCost; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		for _, e := range st.E2E {
			if e <= 0 {
				return false
			}
		}
		if st.Violations > len(st.E2E) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestChaosCapacityNeverOversubscribed fuzzes against a tiny cluster and
// checks capacity accounting: allocations never exceed the node totals
// (enforced by panics inside the cluster state on over-release), and all
// requests complete despite capacity blocking. AlwaysOn is excluded here:
// an adversarial policy that parks a full-GPU instance forever while
// another function demands the same GPU is a genuine deadlock no system
// resolves without eviction.
func TestChaosCapacityNeverOversubscribed(t *testing.T) {
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		app := apps.Pipeline(2)
		tr := trace.Poisson(r, 0.2, 90)
		if tr.Len() == 0 {
			return true
		}
		cluster := hardware.ClusterSpec{Nodes: []hardware.NodeSpec{{Cores: 16, GPUs: 1}}}
		sim := New(Config{App: app, Cluster: cluster, SLA: 5, Seed: seed},
			&chaosDriver{seed: seed, noAlwaysOn: true})
		st := sim.Run(tr)
		return st.Completed == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestChaosDeterminism: the same chaos seed must reproduce the same run.
func TestChaosDeterminism(t *testing.T) {
	run := func() *RunStats {
		tr := trace.Poisson(mathx.NewRand(99), 0.2, 90)
		sim := New(Config{App: apps.VoiceAssistant(), SLA: 2, Seed: 99}, &chaosDriver{seed: 99})
		return sim.Run(tr)
	}
	a, b := run(), run()
	if a.TotalCost != b.TotalCost || a.Inits != b.Inits || a.Violations != b.Violations {
		t.Errorf("chaos run not deterministic: %v/%v %d/%d %d/%d",
			a.TotalCost, b.TotalCost, a.Inits, b.Inits, a.Violations, b.Violations)
	}
}

//go:build !smiless_invariants

package simulator

// invariantsEnabled is false in ordinary builds: invariant() is a no-op the
// compiler eliminates, and blocks gated on this constant are dead code. See
// invariants_on.go for the assertion layer `make invariants` enables.
const invariantsEnabled = false

func invariant(bool, string, ...any) {}

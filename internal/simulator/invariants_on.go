//go:build smiless_invariants

package simulator

import "fmt"

// invariantsEnabled selects the runtime assertion layer: `go test -tags
// smiless_invariants` (or `make invariants`) compiles every invariant()
// call into a live check that panics on violation. Untagged builds compile
// the checks out entirely, preserving byte-identical replay.
const invariantsEnabled = true

// invariant panics when cond is false. The simulator's event loop already
// panics on time travel in every build; the tagged layer adds the
// accounting properties around it: done-map idempotency, pending/remaining
// counters never going negative, and single-fire completion.
func invariant(cond bool, format string, args ...any) {
	if !cond {
		panic("simulator: invariant violated: " + fmt.Sprintf(format, args...))
	}
}

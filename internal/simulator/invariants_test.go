//go:build smiless_invariants

package simulator

import (
	"strings"
	"testing"
)

func TestInvariantModeEnabled(t *testing.T) {
	if !invariantsEnabled {
		t.Fatal("built with -tags smiless_invariants but invariantsEnabled is false")
	}
}

func TestInvariantPanicsWithMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("invariant(false, ...) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated") || !strings.Contains(msg, "request 7") {
			t.Fatalf("panic payload %v lacks the formatted invariant message", r)
		}
	}()
	invariant(false, "request %d", 7)
}

func TestInvariantHoldsSilently(t *testing.T) {
	invariant(true, "never formatted")
}

package simulator

import (
	"sort"

	"smiless/internal/forecast"
	"smiless/internal/metrics"
)

// RecordMetrics exports the run's headline and resilience counters into a
// metrics store at time t (typically the end of the run), under the given
// label set (e.g. {"system": ..., "app": ...}). Series names follow the
// Prometheus convention so metrics.WriteText produces a scrapeable
// exposition.
func (r *RunStats) RecordMetrics(store *metrics.Store, labels metrics.Labels, t float64) {
	rec := func(name string, v float64) { store.Record(name, labels, t, v) }

	rec("smiless_requests_completed_total", float64(r.Completed))
	rec("smiless_requests_failed_total", float64(r.FailedInvocations))
	rec("smiless_availability_ratio", r.Availability())
	rec("smiless_violation_rate_ratio", r.ViolationRate())
	rec("smiless_total_cost_dollars", r.TotalCost)
	rec("smiless_container_inits_total", float64(r.Inits))

	rec("smiless_retries_total", float64(r.Retries))
	rec("smiless_timeouts_total", float64(r.Timeouts))
	rec("smiless_init_failures_total", float64(r.InitFailures))
	rec("smiless_exec_failures_total", float64(r.ExecFailures))
	rec("smiless_stragglers_total", float64(r.Stragglers))
	rec("smiless_hedges_launched_total", float64(r.HedgesLaunched))
	rec("smiless_hedges_won_total", float64(r.HedgesWon))
	rec("smiless_node_down_events_total", float64(r.NodeDownEvents))
	rec("smiless_evicted_containers_total", float64(r.EvictedContainers))
	rec("smiless_breaker_trips_total", float64(r.BreakerTrips))
	rec("smiless_degraded_windows_total", float64(r.DegradedWindows))
	rec("smiless_forwards_total", float64(r.Forwards))
	rec("smiless_failovers_total", float64(r.Failovers))
	rec("smiless_node_down_seconds_total", r.NodeDownSeconds)
	rec("smiless_deadline_exceeded_total", float64(r.DeadlineExceeded))
	rec("smiless_abandoned_total", float64(r.Abandoned))

	// Prediction quality (absent unless the driver ran a forecaster, so
	// forecast-free expositions stay byte-identical to earlier builds).
	if r.ForecastName != "" {
		for _, role := range []struct {
			name   string
			report *forecast.QualityReport
		}{{"interarrival", &r.ForecastIT}, {"count", &r.ForecastCount}} {
			fl := metrics.Labels{}
			for k, v := range labels {
				fl[k] = v
			}
			fl["forecaster"] = r.ForecastName
			fl["role"] = role.name
			rep := role.report
			store.Record("smiless_forecast_mae_one_step", fl, t, rep.OneStepMAE())
			store.Record("smiless_forecast_smape_one_step", fl, t, rep.OneStepSMAPE())
			store.Record("smiless_forecast_upper_violation_ratio", fl, t, rep.UpperViolationRate)
			store.Record("smiless_forecast_refits_total", fl, t, float64(rep.Refits))
			store.Record("smiless_forecast_drift_refits_total", fl, t, float64(rep.DriftRefits))
		}
	}

	// Critical-path attribution (all zero unless the run was traced).
	rec("smiless_queue_on_path_seconds_total", r.QueueOnPathSeconds)
	rec("smiless_init_on_path_seconds_total", r.InitOnPathSeconds)
	rec("smiless_exec_on_path_seconds_total", r.ExecOnPathSeconds)
	rec("smiless_retry_on_path_seconds_total", r.RetryOnPathSeconds)
	for _, fn := range sortedViolationFns(r.ViolationByFn) {
		fl := metrics.Labels{}
		for k, v := range labels {
			fl[k] = v
		}
		fl["function"] = fn
		store.Record("smiless_sla_violations_attributed_total", fl, t, float64(r.ViolationByFn[fn]))
	}
}

// sortedViolationFns returns the attribution map's keys in sorted order so
// metric emission is deterministic.
func sortedViolationFns(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for fn := range m {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

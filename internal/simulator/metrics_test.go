package simulator

import (
	"strings"
	"testing"

	"smiless/internal/metrics"
)

func TestRecordMetricsExposition(t *testing.T) {
	r := &RunStats{
		Completed:         90,
		FailedInvocations: 10,
		TotalCost:         1.25,
		Violations:        9,
		Inits:             12,
		Retries:           7,
		Timeouts:          2,
		InitFailures:      3,
		ExecFailures:      4,
		Stragglers:        5,
		HedgesLaunched:    6,
		HedgesWon:         1,
		NodeDownEvents:    1,
		EvictedContainers: 2,
		BreakerTrips:      1,
		DegradedWindows:   8,
	}
	store := metrics.NewStore()
	r.RecordMetrics(store, metrics.Labels{"system": "SMIless", "app": "WL2"}, 600)

	var sb strings.Builder
	if err := store.WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := sb.String()

	for _, name := range []string{
		"smiless_requests_completed_total",
		"smiless_requests_failed_total",
		"smiless_availability_ratio",
		"smiless_violation_rate_ratio",
		"smiless_total_cost_dollars",
		"smiless_container_inits_total",
		"smiless_retries_total",
		"smiless_timeouts_total",
		"smiless_init_failures_total",
		"smiless_exec_failures_total",
		"smiless_stragglers_total",
		"smiless_hedges_launched_total",
		"smiless_hedges_won_total",
		"smiless_node_down_events_total",
		"smiless_evicted_containers_total",
		"smiless_breaker_trips_total",
		"smiless_degraded_windows_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing series %s", name)
		}
	}
	if !strings.Contains(text, `system="SMIless"`) {
		t.Error("exposition missing system label")
	}
	if got := store.SumValues("smiless_retries_total", nil); got != 7 {
		t.Errorf("retries recorded = %v, want 7", got)
	}
	if got := store.SumValues("smiless_availability_ratio", nil); got != 0.9 {
		t.Errorf("availability recorded = %v, want 0.9", got)
	}
}

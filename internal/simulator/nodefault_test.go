package simulator

import (
	"testing"

	"smiless/internal/apps"
	"smiless/internal/faults"
	"smiless/internal/hardware"
	"smiless/internal/trace"
)

// smallCluster returns an n-node cluster with the given cores per node (no
// GPUs) so placement pressure is easy to engineer in tests.
func smallCluster(n, cores int) hardware.ClusterSpec {
	nodes := make([]hardware.NodeSpec, n)
	for i := range nodes {
		nodes[i] = hardware.NodeSpec{Cores: cores}
	}
	return hardware.ClusterSpec{Nodes: nodes}
}

func TestNodeCrashFailoverLossless(t *testing.T) {
	// A node crashes with a request in flight. The gossip detector declares
	// it down (~1 s later at the default cadence), the in-flight member
	// fails over to a live peer without charging a retry attempt, and the
	// request completes. Nothing is lost and nothing completes twice.
	app := apps.Pipeline(2)
	sim := MustNew(Config{
		App: app, SLA: 600, Seed: 5,
		Faults: &faults.Plan{NodeFaults: []faults.NodeFault{
			{Node: 0, Kind: faults.NodeCrash, Start: 15, End: 40},
		}},
	}, retryDriver(faults.RetryPolicy{MaxAttempts: 5, BaseBackoff: 0.5}, 0))
	// Stretch the first execution so the crash lands mid-exec rather than
	// mid-init (warm exec windows are sub-second).
	sim.inj = &scriptInjector{straggler: []float64{60}}
	st := sim.MustRun(&trace.Trace{Horizon: 300, Arrivals: []float64{10}})
	if st.Completed != 1 || st.FailedInvocations != 0 {
		t.Fatalf("completed=%d failed=%d, want 1/0 (crash must not lose the request)",
			st.Completed, st.FailedInvocations)
	}
	if st.NodeDownEvents != 1 {
		t.Errorf("nodeDownEvents = %d, want 1", st.NodeDownEvents)
	}
	if st.Failovers == 0 {
		t.Error("expected at least one failover of the in-flight member")
	}
	if st.EvictedContainers == 0 {
		t.Error("expected the crashed node's containers evicted at detection")
	}
	// Failover charges no retry attempt: the failure is the node's fault.
	if st.Retries != 0 {
		t.Errorf("retries = %d, want 0 (failover must not consume the retry budget)", st.Retries)
	}
	if st.NodeDownSeconds <= 0 {
		t.Errorf("nodeDownSeconds = %v, want > 0", st.NodeDownSeconds)
	}
}

func TestNodeCrashFastFlapStillFailsOver(t *testing.T) {
	// The node crashes and restarts before the detector can declare it
	// down. The restart itself must evict the containers that died with the
	// process and fail their work over — a fast flap cannot lose requests.
	app := apps.Pipeline(2)
	sim := MustNew(Config{
		App: app, SLA: 600, Seed: 5,
		Faults: &faults.Plan{NodeFaults: []faults.NodeFault{
			{Node: 0, Kind: faults.NodeCrash, Start: 15, End: 15.3},
		}},
	}, retryDriver(faults.RetryPolicy{MaxAttempts: 5, BaseBackoff: 0.5}, 0))
	sim.inj = &scriptInjector{straggler: []float64{60}}
	st := sim.MustRun(&trace.Trace{Horizon: 300, Arrivals: []float64{10}})
	if st.Completed != 1 || st.FailedInvocations != 0 {
		t.Fatalf("completed=%d failed=%d, want 1/0", st.Completed, st.FailedInvocations)
	}
	if st.NodeDownEvents != 0 {
		t.Errorf("nodeDownEvents = %d, want 0 (flap was faster than detection)", st.NodeDownEvents)
	}
	if st.Failovers == 0 {
		t.Error("expected the restart to fail in-flight work over")
	}
}

func TestNodePartitionTwinsAndDedups(t *testing.T) {
	// A partition strands the in-flight execution behind an unreachable
	// node. At detection a twin races on a live peer; at heal the held
	// original completion replays. Exactly one completion must win.
	app := apps.Pipeline(2)
	sim := MustNew(Config{
		App: app, SLA: 600, Seed: 5,
		Faults: &faults.Plan{NodeFaults: []faults.NodeFault{
			{Node: 0, Kind: faults.NodePartition, Start: 11, End: 60},
		}},
	}, retryDriver(faults.RetryPolicy{MaxAttempts: 5, BaseBackoff: 0.5}, 0))
	st := sim.MustRun(&trace.Trace{Horizon: 300, Arrivals: []float64{10}})
	if st.Completed != 1 || st.FailedInvocations != 0 {
		t.Fatalf("completed=%d failed=%d, want exactly 1/0 (idempotent dedup)",
			st.Completed, st.FailedInvocations)
	}
	if st.Failovers == 0 {
		t.Error("expected the stranded member twinned onto a live peer")
	}
	// Partitioned containers keep running; nothing is evicted at detection.
	if st.EvictedContainers != 0 {
		t.Errorf("evicted = %d, want 0 (partition must not kill containers)", st.EvictedContainers)
	}
	if st.NodeDownEvents != 1 || st.NodeDownSeconds <= 0 {
		t.Errorf("nodeDownEvents=%d nodeDownSeconds=%v, want 1 and > 0",
			st.NodeDownEvents, st.NodeDownSeconds)
	}
}

func TestP2CPlacementForwardsOverflow(t *testing.T) {
	// Two 8-core nodes, 4-core containers: the home node fits two
	// instances, so materializing four forwards at least one launch.
	app := apps.Pipeline(1)
	run := func(p PlacementPolicy) *RunStats {
		sim := MustNew(Config{
			App: app, SLA: 600, Seed: 5,
			Cluster:   smallCluster(2, 8),
			Placement: p,
		}, retryDriver(faults.RetryPolicy{}, 0))
		return sim.MustRun(&trace.Trace{Horizon: 200,
			Arrivals: []float64{1, 1.001, 1.002, 1.003}})
	}
	p2c := run(PlaceP2C)
	if p2c.Completed != 4 {
		t.Fatalf("completed = %d, want 4", p2c.Completed)
	}
	if p2c.Forwards == 0 {
		t.Error("expected overflow launches forwarded off the home node")
	}
	ff := run(PlaceFirstFit)
	if ff.Forwards != 0 {
		t.Errorf("first-fit forwards = %d, want 0", ff.Forwards)
	}
	if ff.Completed != 4 {
		t.Fatalf("first-fit completed = %d, want 4", ff.Completed)
	}
}

func TestNodeFaultRunDeterministic(t *testing.T) {
	// A churn plan (crash + partition) under p2c placement must produce
	// bit-identical statistics across reruns: gossip, failover, and
	// placement all draw from seeded deterministic state.
	run := func() *RunStats {
		plan := &faults.Plan{
			NodeFaults: []faults.NodeFault{
				{Node: 0, Kind: faults.NodeCrash, Start: 20, End: 45},
				{Node: 1, Kind: faults.NodePartition, Start: 60, End: 80},
			},
			Seed: 9,
		}
		sim := MustNew(Config{
			App: apps.ImageQuery(), SLA: 4, Seed: 11,
			Cluster:   smallCluster(4, 32),
			Placement: PlaceP2C,
			Faults:    plan,
		}, retryDriver(faults.RetryPolicy{MaxAttempts: 3, Timeout: 8, BaseBackoff: 0.1}, 0))
		arr := []float64{1, 3, 9, 14, 19, 21, 30, 31, 55, 61, 62, 70, 81, 100}
		return sim.MustRun(&trace.Trace{Horizon: 150, Arrivals: arr})
	}
	a, b := run(), run()
	if a.TotalCost != b.TotalCost || a.Completed != b.Completed ||
		a.FailedInvocations != b.FailedInvocations ||
		a.Failovers != b.Failovers || a.Forwards != b.Forwards ||
		a.NodeDownEvents != b.NodeDownEvents ||
		a.NodeDownSeconds != b.NodeDownSeconds {
		t.Fatalf("churn run not deterministic:\n%+v\n%+v", a, b)
	}
	if len(a.E2E) != len(b.E2E) {
		t.Fatalf("E2E lengths diverged: %d vs %d", len(a.E2E), len(b.E2E))
	}
	for i := range a.E2E {
		if a.E2E[i] != b.E2E[i] {
			t.Fatalf("E2E[%d] diverged: %v vs %v", i, a.E2E[i], b.E2E[i])
		}
	}
	// The plan actually exercised the machinery.
	if a.NodeDownEvents == 0 || a.Failovers == 0 {
		t.Errorf("plan exercised nothing: downEvents=%d failovers=%d",
			a.NodeDownEvents, a.Failovers)
	}
}

package simulator

import (
	"reflect"
	"testing"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
	"smiless/internal/placement"
	"smiless/internal/trace"
)

// placementIdentityRun runs one seeded simulation with the given (possibly
// nil) interference model and price trace attached.
func placementIdentityRun(t *testing.T, model *placement.Model, pt *hardware.PriceTrace) *RunStats {
	t.Helper()
	app := apps.Pipeline(3)
	tr := trace.Bursty(mathx.NewRand(42), 20, 2, 3, 600)
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{
			Config: cpu(4), Policy: coldstart.KeepAlive,
			KeepAlive: 30, Batch: 2, Instances: 2,
		}
	}}
	sim := MustNew(Config{
		App: app, SLA: 60, Seed: 99,
		Interference: model, PriceTrace: pt,
	}, d)
	st := sim.MustRun(tr)
	if st.Completed == 0 || st.TotalCost <= 0 {
		t.Fatal("identity run completed nothing; the regression test is vacuous")
	}
	return st
}

// TestPlacementOffByteIdentical is the placement subsystem's byte-identity
// contract: a zero interference matrix plus a flat unit price trace must
// leave every run statistic — latencies, counters, billed cost — exactly
// equal to a run with the machinery absent. Any drift here means the
// interference/pricing gates leak into default runs.
func TestPlacementOffByteIdentical(t *testing.T) {
	plain := placementIdentityRun(t, nil, nil)
	gated := placementIdentityRun(t, placement.NewModel(placement.ZeroMatrix()), hardware.FlatTrace(1))
	if gated.placementActive() {
		t.Fatal("zero matrix + flat trace bumped placement counters")
	}
	if !reflect.DeepEqual(plain, gated) {
		t.Fatalf("placement-off run diverged from plain run:\nplain: %s\ngated: %s",
			plain.Summary(), gated.Summary())
	}
}

// A real interference model must actually perturb the run — the guard that
// keeps TestPlacementOffByteIdentical from passing vacuously.
func TestInterferenceModelPerturbsRun(t *testing.T) {
	plain := placementIdentityRun(t, nil, nil)
	hot := placementIdentityRun(t, &placement.Model{Matrix: placement.DefaultMatrix(), Scale: 5}, nil)
	if hot.InterferedInits+hot.InterferedBatches == 0 {
		t.Fatal("default interference model at scale 5 interfered with nothing")
	}
	if hot.InterferenceSeconds <= 0 {
		t.Fatal("interference slowdown accrued no extra seconds")
	}
	if reflect.DeepEqual(plain.E2E, hot.E2E) {
		t.Fatal("interference model left every latency untouched")
	}
}

// Preemption windows must withdraw the node, evict its containers and
// restore capacity afterwards, all deterministically.
func TestPreemptionWindowEvicts(t *testing.T) {
	pt := &hardware.PriceTrace{
		Preemptions: []hardware.PreemptionWindow{{Node: 0, Start: 100, End: 200}},
	}
	st := placementIdentityRun(t, nil, pt)
	if st.Preemptions != 1 {
		t.Fatalf("Preemptions = %d, want 1", st.Preemptions)
	}
	if st.PreemptedContainers == 0 {
		t.Fatal("preemption window evicted no containers")
	}
	a := placementIdentityRun(t, nil, pt)
	if !reflect.DeepEqual(st, a) {
		t.Fatal("preemption runs diverged between identical configurations")
	}
}

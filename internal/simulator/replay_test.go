package simulator

import (
	"bytes"
	"math"
	"testing"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/faults"
	"smiless/internal/mathx"
	"smiless/internal/trace"
	"smiless/internal/tracing"
)

// replayOnce builds the same seeded trace and fault plan from scratch and
// runs one full simulation, returning the serialized Report. Everything —
// trace sampling, ground-truth timings, fault draws, retry jitter — derives
// from fixed seeds, so two calls must agree to the last bit.
func replayOnce(t *testing.T) []byte {
	report, _ := replayOnceTraced(t, false)
	return report
}

// replayOnceTraced is replayOnce with an optional span recorder attached;
// it returns the serialized Report and, when traced, the simulation state
// needed to cross-check the trace against the run statistics.
func replayOnceTraced(t *testing.T, traced bool) ([]byte, *replayRun) {
	t.Helper()
	app := apps.Pipeline(3)
	tr := trace.Bursty(mathx.NewRand(42), 20, 2, 3, 600)
	plan := &faults.Plan{
		Default: faults.Rates{InitFail: 0.05, ExecFail: 0.04, Straggler: 0.05},
		Outages: []faults.Outage{{Node: 0, Start: 200, End: 320}},
		Seed:    7,
	}
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{
			Config: cpu(4), Policy: coldstart.KeepAlive,
			KeepAlive: 30, Batch: 4, Instances: 4,
			Retry:      faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: 0.2, MaxBackoff: 2, JitterFrac: 0.3, Timeout: 20},
			HedgeDelay: 15,
		}
	}}
	sim := MustNew(Config{App: app, SLA: 60, Seed: 1234, Faults: plan}, d)
	var rec *tracing.Recorder
	var run *replayRun
	if traced {
		rec = tracing.NewRecorder(app.Graph)
		sim.AttachRecorder(rec)
	}
	st := sim.MustRun(tr)
	if traced {
		run = &replayRun{rec: rec, stats: st}
	}
	if st.Completed == 0 {
		t.Fatal("replay run completed no requests; the regression test is vacuous")
	}
	if st.InitFailures+st.ExecFailures+st.Stragglers+st.NodeDownEvents == 0 {
		t.Fatal("replay run injected no faults; the regression test is vacuous")
	}
	rep := BuildReport("replay", "pipeline3", st)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes(), run
}

// replayRun carries one traced replay's outputs for cross-checking.
type replayRun struct {
	rec   *tracing.Recorder
	stats *RunStats
}

// TestReplayIsByteIdentical is the repo's reproducibility contract: the same
// seeded trace and fault plan, run twice in-process, must produce
// byte-identical Report JSON. This is what the determinism and maporder
// analyzers (internal/lint) exist to protect — a wall-clock read, an
// unsorted map-order float accumulation or a stray global-RNG draw anywhere
// on the run path shows up here as a diff.
func TestReplayIsByteIdentical(t *testing.T) {
	a := replayOnce(t)
	b := replayOnce(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("replay diverged:\nrun 1:\n%s\nrun 2:\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty report")
	}
}

// TestTracedReplayIsByteIdentical extends the reproducibility contract to
// tracing: the same seeded run with a span recorder attached, twice, must
// produce byte-identical Chrome trace JSON and Report, and every completed
// request's critical-path phase sums must reconcile with the E2E latency the
// simulator recorded for it.
func TestTracedReplayIsByteIdentical(t *testing.T) {
	repA, runA := replayOnceTraced(t, true)
	repB, runB := replayOnceTraced(t, true)
	if !bytes.Equal(repA, repB) {
		t.Fatalf("traced replay report diverged:\nrun 1:\n%s\nrun 2:\n%s", repA, repB)
	}
	var trA, trB bytes.Buffer
	if err := runA.rec.WriteChromeTrace(&trA, 600); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := runB.rec.WriteChromeTrace(&trB, 600); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Equal(trA.Bytes(), trB.Bytes()) {
		t.Fatal("traced replay produced diverging Chrome trace JSON")
	}

	// The untraced replay must not be perturbed by the recorder: the traced
	// report may only add the tracing-only fields, so compare the shared
	// headline numbers through the stats object instead of the JSON.
	bds := runA.rec.Breakdowns()
	e2e := runA.stats.E2E
	if len(bds) == 0 {
		t.Fatal("traced replay produced no breakdowns; the reconciliation check is vacuous")
	}
	if len(bds) != len(e2e) {
		t.Fatalf("breakdowns (%d) and recorded E2E samples (%d) disagree", len(bds), len(e2e))
	}
	for i, bd := range bds {
		if math.Abs(bd.E2E-e2e[i]) > 1e-9 {
			t.Errorf("request %d: breakdown E2E %.12f != recorded E2E %.12f", bd.Req, bd.E2E, e2e[i])
		}
		if math.Abs(bd.PhaseSum()-bd.E2E) > 1e-9 {
			t.Errorf("request %d: phase sum %.12f does not reconcile with E2E %.12f (phases %v)",
				bd.Req, bd.PhaseSum(), bd.E2E, bd.Phases)
		}
	}
}

package simulator

import (
	"bytes"
	"testing"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/faults"
	"smiless/internal/mathx"
	"smiless/internal/trace"
)

// replayOnce builds the same seeded trace and fault plan from scratch and
// runs one full simulation, returning the serialized Report. Everything —
// trace sampling, ground-truth timings, fault draws, retry jitter — derives
// from fixed seeds, so two calls must agree to the last bit.
func replayOnce(t *testing.T) []byte {
	t.Helper()
	app := apps.Pipeline(3)
	tr := trace.Bursty(mathx.NewRand(42), 20, 2, 3, 600)
	plan := &faults.Plan{
		Default: faults.Rates{InitFail: 0.05, ExecFail: 0.04, Straggler: 0.05},
		Outages: []faults.Outage{{Node: 0, Start: 200, End: 320}},
		Seed:    7,
	}
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{
			Config: cpu(4), Policy: coldstart.KeepAlive,
			KeepAlive: 30, Batch: 4, Instances: 4,
			Retry:      faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: 0.2, MaxBackoff: 2, JitterFrac: 0.3, Timeout: 20},
			HedgeDelay: 15,
		}
	}}
	sim := MustNew(Config{App: app, SLA: 60, Seed: 1234, Faults: plan}, d)
	st := sim.MustRun(tr)
	if st.Completed == 0 {
		t.Fatal("replay run completed no requests; the regression test is vacuous")
	}
	if st.InitFailures+st.ExecFailures+st.Stragglers+st.NodeDownEvents == 0 {
		t.Fatal("replay run injected no faults; the regression test is vacuous")
	}
	rep := BuildReport("replay", "pipeline3", st)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// TestReplayIsByteIdentical is the repo's reproducibility contract: the same
// seeded trace and fault plan, run twice in-process, must produce
// byte-identical Report JSON. This is what the determinism and maporder
// analyzers (internal/lint) exist to protect — a wall-clock read, an
// unsorted map-order float accumulation or a stray global-RNG draw anywhere
// on the run path shows up here as a diff.
func TestReplayIsByteIdentical(t *testing.T) {
	a := replayOnce(t)
	b := replayOnce(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("replay diverged:\nrun 1:\n%s\nrun 2:\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty report")
	}
}

package simulator

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"smiless/internal/mathx"
)

// Report is the serializable summary of one run: what an experiment
// pipeline archives next to its tables. It is derived from RunStats and
// deterministic for a deterministic run.
type Report struct {
	System    string  `json:"system"`
	App       string  `json:"app"`
	SLA       float64 `json:"sla_seconds"`
	Requests  int     `json:"requests"`
	Measured  int     `json:"measured_requests"`
	TotalCost float64 `json:"total_cost_dollars"`

	ViolationRate float64 `json:"violation_rate"`
	LatencyP50    float64 `json:"latency_p50_seconds"`
	LatencyP95    float64 `json:"latency_p95_seconds"`
	LatencyP99    float64 `json:"latency_p99_seconds"`
	LatencyMax    float64 `json:"latency_max_seconds"`

	Inits           int     `json:"container_inits"`
	ReinitPerReq    float64 `json:"reinit_per_request"`
	InitGated       int     `json:"init_gated_batches"`
	MeanBatch       float64 `json:"mean_batch"`
	CPUSeconds      float64 `json:"cpu_container_seconds"`
	GPUSeconds      float64 `json:"gpu_container_seconds"`
	CPUCost         float64 `json:"cpu_cost_dollars"`
	GPUCost         float64 `json:"gpu_cost_dollars"`
	CapacityBlocked int     `json:"capacity_blocked_launches"`

	// Resilience counters (all zero and omitted on fault-free runs).
	Availability      float64 `json:"availability,omitempty"`
	FailedRequests    int     `json:"failed_requests,omitempty"`
	Retries           int     `json:"retries,omitempty"`
	Timeouts          int     `json:"timeouts,omitempty"`
	InitFailures      int     `json:"init_failures,omitempty"`
	ExecFailures      int     `json:"exec_failures,omitempty"`
	Stragglers        int     `json:"stragglers,omitempty"`
	HedgesLaunched    int     `json:"hedges_launched,omitempty"`
	HedgesWon         int     `json:"hedges_won,omitempty"`
	NodeDownEvents    int     `json:"node_down_events,omitempty"`
	EvictedContainers int     `json:"evicted_containers,omitempty"`
	BreakerTrips      int     `json:"breaker_trips,omitempty"`
	DegradedWindows   int     `json:"degraded_windows,omitempty"`
	Forwards          int     `json:"forwards,omitempty"`
	Failovers         int     `json:"failovers,omitempty"`
	NodeDownSeconds   float64 `json:"node_down_seconds,omitempty"`
	DeadlineExceeded  int     `json:"deadline_exceeded,omitempty"`
	Abandoned         int     `json:"abandoned,omitempty"`

	// Critical-path attribution (zero and omitted unless the run was traced
	// with internal/tracing): per-phase seconds summed over the measured
	// requests' critical paths, and SLA violations attributed to the blamed
	// function. Untraced runs serialize byte-identically to pre-tracing
	// builds.
	QueueOnPathSeconds   float64                  `json:"queue_on_path_seconds,omitempty"`
	InitOnPathSeconds    float64                  `json:"init_on_path_seconds,omitempty"`
	ExecOnPathSeconds    float64                  `json:"exec_on_path_seconds,omitempty"`
	RetryOnPathSeconds   float64                  `json:"retry_on_path_seconds,omitempty"`
	ViolationsByFunction []FunctionViolationEntry `json:"violations_by_function,omitempty"`

	// CostByFunction is sorted by descending cost for stable output.
	CostByFunction []FunctionCostEntry `json:"cost_by_function"`
}

// FunctionViolationEntry attributes SLA violations to one function.
type FunctionViolationEntry struct {
	Function   string `json:"function"`
	Violations int    `json:"violations"`
}

// FunctionCostEntry attributes cost to one function.
type FunctionCostEntry struct {
	Function string  `json:"function"`
	Cost     float64 `json:"cost_dollars"`
}

// BuildReport assembles a Report from run statistics.
func BuildReport(system, app string, st *RunStats) Report {
	r := Report{
		System:          system,
		App:             app,
		SLA:             st.SLA,
		Requests:        st.Completed,
		Measured:        len(st.E2E),
		TotalCost:       st.TotalCost,
		ViolationRate:   st.ViolationRate(),
		LatencyP50:      st.LatencyPercentile(50),
		LatencyP95:      st.LatencyPercentile(95),
		LatencyP99:      st.LatencyPercentile(99),
		LatencyMax:      mathx.Max(st.E2E),
		Inits:           st.Inits,
		ReinitPerReq:    st.ReinitFraction(),
		InitGated:       st.InitGated,
		MeanBatch:       st.MeanBatch(),
		CPUSeconds:      st.CPUSeconds,
		GPUSeconds:      st.GPUSeconds,
		CPUCost:         st.CPUCost,
		GPUCost:         st.GPUCost,
		CapacityBlocked: st.CapacityBlocked,
	}
	if st.resilienceActive() {
		r.Availability = st.Availability()
		r.FailedRequests = st.FailedInvocations
		r.Retries = st.Retries
		r.Timeouts = st.Timeouts
		r.InitFailures = st.InitFailures
		r.ExecFailures = st.ExecFailures
		r.Stragglers = st.Stragglers
		r.HedgesLaunched = st.HedgesLaunched
		r.HedgesWon = st.HedgesWon
		r.NodeDownEvents = st.NodeDownEvents
		r.EvictedContainers = st.EvictedContainers
		r.BreakerTrips = st.BreakerTrips
		r.DegradedWindows = st.DegradedWindows
		r.Forwards = st.Forwards
		r.Failovers = st.Failovers
		r.NodeDownSeconds = st.NodeDownSeconds
		r.DeadlineExceeded = st.DeadlineExceeded
		r.Abandoned = st.Abandoned
	}
	r.QueueOnPathSeconds = st.QueueOnPathSeconds
	r.InitOnPathSeconds = st.InitOnPathSeconds
	r.ExecOnPathSeconds = st.ExecOnPathSeconds
	r.RetryOnPathSeconds = st.RetryOnPathSeconds
	if len(st.ViolationByFn) > 0 {
		fns := make([]string, 0, len(st.ViolationByFn))
		for fn := range st.ViolationByFn {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		for _, fn := range fns {
			r.ViolationsByFunction = append(r.ViolationsByFunction,
				FunctionViolationEntry{Function: fn, Violations: st.ViolationByFn[fn]})
		}
	}
	for fn, c := range st.CostPerFn {
		r.CostByFunction = append(r.CostByFunction, FunctionCostEntry{Function: fn, Cost: c})
	}
	sort.Slice(r.CostByFunction, func(i, j int) bool {
		if r.CostByFunction[i].Cost != r.CostByFunction[j].Cost { //lint:allow floateq comparator tie-break: exact equality decides when the name ordering applies
			return r.CostByFunction[i].Cost > r.CostByFunction[j].Cost
		}
		return r.CostByFunction[i].Function < r.CostByFunction[j].Function
	})
	return r
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return Report{}, fmt.Errorf("simulator: decoding report: %w", err)
	}
	return r, nil
}

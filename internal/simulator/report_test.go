package simulator

import (
	"bytes"
	"testing"

	"smiless/internal/apps"
	"smiless/internal/trace"
)

func TestBuildReport(t *testing.T) {
	tr := &trace.Trace{Horizon: 100, Arrivals: []float64{1, 20, 40, 60}}
	st := runPipeline(t, keepAliveDriver(cpu(4), 30), tr, 30)
	r := BuildReport("test-driver", "Pipeline-3", st)
	if r.Requests != 4 || r.Measured != 4 {
		t.Errorf("requests = %d/%d, want 4/4", r.Requests, r.Measured)
	}
	if r.TotalCost != st.TotalCost {
		t.Error("cost mismatch")
	}
	if len(r.CostByFunction) != 3 {
		t.Fatalf("cost entries = %d, want 3", len(r.CostByFunction))
	}
	// Sorted descending.
	for i := 1; i < len(r.CostByFunction); i++ {
		if r.CostByFunction[i-1].Cost < r.CostByFunction[i].Cost {
			t.Error("cost entries not sorted descending")
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	tr := &trace.Trace{Horizon: 60, Arrivals: []float64{1, 10}}
	st := runPipeline(t, keepAliveDriver(cpu(4), 30), tr, 60)
	r := BuildReport("d", "a", st)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalCost != r.TotalCost || back.Requests != r.Requests ||
		len(back.CostByFunction) != len(r.CostByFunction) {
		t.Error("round trip lost fields")
	}
}

func TestReadReportError(t *testing.T) {
	if _, err := ReadReport(bytes.NewBufferString("{nope")); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestReportWarmupSplit(t *testing.T) {
	// StatsAfter excludes early arrivals from measurement but not from
	// Requests.
	app := apps.Pipeline(1)
	d := keepAliveDriver(cpu(4), 60)
	sim := MustNew(Config{App: app, SLA: 30, Seed: 1, StatsAfter: 50}, d)
	st := sim.MustRun(&trace.Trace{Horizon: 120, Arrivals: []float64{10, 60, 100}})
	r := BuildReport("d", "a", st)
	if r.Requests != 3 {
		t.Errorf("requests = %d, want 3", r.Requests)
	}
	if r.Measured != 2 {
		t.Errorf("measured = %d, want 2 (one arrival inside warm-up)", r.Measured)
	}
}

package simulator

import (
	"errors"
	"testing"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/faults"
	"smiless/internal/trace"
)

// scriptInjector is a deterministic injector fake: each call pops the next
// scripted outcome; exhausted scripts report no fault.
type scriptInjector struct {
	initFail  []bool
	execFail  []bool
	straggler []float64 // multiplier per execution; <=1 means none
	initIdx   int
	execIdx   int
	stragIdx  int
}

func (f *scriptInjector) InitOutcome(string) (bool, float64) {
	if f.initIdx >= len(f.initFail) {
		return false, 0
	}
	fail := f.initFail[f.initIdx]
	f.initIdx++
	return fail, 0.5
}

func (f *scriptInjector) ExecOutcome(string) (bool, float64) {
	if f.execIdx >= len(f.execFail) {
		return false, 0
	}
	fail := f.execFail[f.execIdx]
	f.execIdx++
	return fail, 0.5
}

func (f *scriptInjector) StragglerFactor(string) float64 {
	if f.stragIdx >= len(f.straggler) {
		return 1
	}
	v := f.straggler[f.stragIdx]
	f.stragIdx++
	return v
}

func (f *scriptInjector) Jitter() float64 { return 0.5 }

func TestNewConfigErrors(t *testing.T) {
	app := apps.Pipeline(2)
	drv := keepAliveDriver(cpu(4), 30)
	cases := []struct {
		name  string
		cfg   Config
		drv   Driver
		field string
	}{
		{"nil-driver", Config{App: app}, nil, "driver"},
		{"nil-app", Config{}, drv, "App"},
		{"negative-sla", Config{App: app, SLA: -1}, drv, "SLA"},
		{"negative-window", Config{App: app, Window: -2}, drv, "Window"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.cfg, c.drv)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("want *ConfigError, got %v", err)
			}
			if ce.Field != c.field {
				t.Errorf("field = %q, want %q", ce.Field, c.field)
			}
		})
	}
	// Out-of-range outage node.
	_, err := New(Config{App: app, Faults: &faults.Plan{
		Outages: []faults.Outage{{Node: 99, Start: 1, End: 2}},
	}}, drv)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("want *ConfigError for bad outage node, got %v", err)
	}
}

func TestRunEmptyTrace(t *testing.T) {
	sim := MustNew(Config{App: apps.Pipeline(2), SLA: 10, Seed: 1}, keepAliveDriver(cpu(4), 30))
	if _, err := sim.Run(nil); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("nil trace: want ErrEmptyTrace, got %v", err)
	}
	sim = MustNew(Config{App: apps.Pipeline(2), SLA: 10, Seed: 1}, keepAliveDriver(cpu(4), 30))
	if _, err := sim.Run(&trace.Trace{Horizon: 10}); !errors.Is(err, ErrEmptyTrace) {
		t.Errorf("zero-arrival trace: want ErrEmptyTrace, got %v", err)
	}
}

// retryDriver installs a keep-alive directive with a retry policy.
func retryDriver(pol faults.RetryPolicy, hedge float64) *staticDriver {
	return &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{
			Config: cpu(4), Policy: coldstart.KeepAlive, KeepAlive: 60,
			Batch: 1, Instances: 4, Retry: pol, HedgeDelay: hedge,
		}
	}}
}

func TestExecCrashRetriedToSuccess(t *testing.T) {
	// First execution of the first function crashes; the retry succeeds.
	app := apps.Pipeline(2)
	sim := MustNew(Config{App: app, SLA: 60, Seed: 3}, retryDriver(
		faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: 0.1}, 0))
	sim.inj = &scriptInjector{execFail: []bool{true}}
	st := sim.MustRun(&trace.Trace{Horizon: 60, Arrivals: []float64{1}})
	if st.Completed != 1 || st.FailedInvocations != 0 {
		t.Fatalf("completed=%d failed=%d, want 1/0", st.Completed, st.FailedInvocations)
	}
	if st.ExecFailures != 1 || st.Retries != 1 {
		t.Errorf("execFailures=%d retries=%d, want 1/1", st.ExecFailures, st.Retries)
	}
	if st.Availability() != 1 {
		t.Errorf("availability = %v, want 1", st.Availability())
	}
}

func TestExecCrashExhaustsRetries(t *testing.T) {
	// Every execution of the entry function crashes; with MaxAttempts=2 the
	// request is lost after the second failure.
	app := apps.Pipeline(2)
	sim := MustNew(Config{App: app, SLA: 60, Seed: 3}, retryDriver(
		faults.RetryPolicy{MaxAttempts: 2, BaseBackoff: 0.1}, 0))
	sim.inj = &scriptInjector{execFail: []bool{true, true, true, true}}
	st := sim.MustRun(&trace.Trace{Horizon: 60, Arrivals: []float64{1}})
	if st.Completed != 0 || st.FailedInvocations != 1 {
		t.Fatalf("completed=%d failed=%d, want 0/1", st.Completed, st.FailedInvocations)
	}
	if st.Availability() != 0 {
		t.Errorf("availability = %v, want 0", st.Availability())
	}
}

func TestNoRetryPolicyLosesRequestOnCrash(t *testing.T) {
	app := apps.Pipeline(2)
	sim := MustNew(Config{App: app, SLA: 60, Seed: 3}, keepAliveDriver(cpu(4), 60))
	sim.inj = &scriptInjector{execFail: []bool{true}}
	st := sim.MustRun(&trace.Trace{Horizon: 60, Arrivals: []float64{1}})
	if st.Completed != 0 || st.FailedInvocations != 1 {
		t.Fatalf("completed=%d failed=%d, want 0/1 (zero policy = no retry)",
			st.Completed, st.FailedInvocations)
	}
}

func TestInitCrashRelaunches(t *testing.T) {
	// The first initialization crashes; the relaunch completes the request
	// without any retry policy (cold-start retry is implicit).
	app := apps.Pipeline(2)
	sim := MustNew(Config{App: app, SLA: 120, Seed: 3}, keepAliveDriver(cpu(4), 60))
	sim.inj = &scriptInjector{initFail: []bool{true}}
	st := sim.MustRun(&trace.Trace{Horizon: 120, Arrivals: []float64{1}})
	if st.Completed != 1 {
		t.Fatalf("completed = %d, want 1", st.Completed)
	}
	if st.InitFailures != 1 {
		t.Errorf("initFailures = %d, want 1", st.InitFailures)
	}
	// The crashed container's partial init time is still billed: its
	// function shows more inits than batches.
	if st.Inits < 3 {
		t.Errorf("inits = %d, want >= 3 (crashed + relaunch + fn2)", st.Inits)
	}
}

func TestTimeoutThenSuccess(t *testing.T) {
	// A straggler inflates the first execution far past the per-attempt
	// timeout; the gateway kills it and the retry (not inflated) succeeds.
	app := apps.Pipeline(2)
	sim := MustNew(Config{App: app, SLA: 120, Seed: 3}, retryDriver(
		faults.RetryPolicy{MaxAttempts: 3, Timeout: 2, BaseBackoff: 0.1}, 0))
	sim.inj = &scriptInjector{straggler: []float64{50}}
	st := sim.MustRun(&trace.Trace{Horizon: 120, Arrivals: []float64{1}})
	if st.Completed != 1 || st.FailedInvocations != 0 {
		t.Fatalf("completed=%d failed=%d, want 1/0", st.Completed, st.FailedInvocations)
	}
	if st.Timeouts != 1 || st.Stragglers != 1 || st.Retries != 1 {
		t.Errorf("timeouts=%d stragglers=%d retries=%d, want 1/1/1",
			st.Timeouts, st.Stragglers, st.Retries)
	}
}

func TestHedgeWins(t *testing.T) {
	// Two warm instances; the primary execution is inflated 40x, so the
	// hedge launched on the idle twin finishes first.
	app := apps.Pipeline(1)
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{
			Config: cpu(4), Policy: coldstart.KeepAlive, KeepAlive: 120,
			Batch: 1, Instances: 2, MinWarm: 2, HedgeDelay: 1.5,
		}
	}}
	sim := MustNew(Config{App: app, SLA: 120, Seed: 3}, d)
	// Pre-warm the second instance by a first request, then hedge the
	// second request: script [none, straggler-on-primary, none-for-hedge].
	sim.inj = &scriptInjector{straggler: []float64{1, 40, 1}}
	// Warm both instances up-front via MinWarm + EnsureInstances in Setup:
	// the static driver only installs directives, so instead send two
	// near-simultaneous requests first to materialize two instances.
	st := sim.MustRun(&trace.Trace{Horizon: 200, Arrivals: []float64{1, 1.001, 40}})
	if st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
	if st.HedgesLaunched != 1 || st.HedgesWon != 1 {
		t.Errorf("hedges launched=%d won=%d, want 1/1", st.HedgesLaunched, st.HedgesWon)
	}
	// The hedged request must finish far sooner than the 40x straggler
	// would have taken alone.
	e2e := st.E2E[len(st.E2E)-1]
	if e2e > 30 {
		t.Errorf("hedged request took %v s; hedge should have cut the straggler tail", e2e)
	}
}

func TestNodeOutageEvictsAndRecovers(t *testing.T) {
	// Single-node cluster goes down mid-run: the in-flight request is
	// evicted, retried, and completes after the node returns.
	app := apps.Pipeline(2)
	sim := MustNew(Config{
		App: app, SLA: 600, Seed: 5,
		Faults: &faults.Plan{Outages: []faults.Outage{{Node: 0, Start: 12, End: 30}}},
	}, retryDriver(faults.RetryPolicy{MaxAttempts: 5, BaseBackoff: 0.5}, 0))
	st := sim.MustRun(&trace.Trace{Horizon: 300, Arrivals: []float64{10}})
	if st.NodeDownEvents != 1 {
		t.Fatalf("nodeDownEvents = %d, want 1", st.NodeDownEvents)
	}
	if st.EvictedContainers == 0 {
		t.Error("expected at least one evicted container")
	}
	if st.Completed != 1 || st.FailedInvocations != 0 {
		t.Fatalf("completed=%d failed=%d, want 1/0 (request survives the outage)",
			st.Completed, st.FailedInvocations)
	}
}

func TestZeroFaultPlanBitCompatible(t *testing.T) {
	// A nil plan and an all-zero plan must both leave the simulator in its
	// fault-free mode with identical statistics.
	run := func(p *faults.Plan) *RunStats {
		sim := MustNew(Config{App: apps.ImageQuery(), SLA: 4, Seed: 11, Faults: p},
			keepAliveDriver(cpu(4), 30))
		if sim.FaultsEnabled() {
			t.Fatal("all-zero plan must not enable injection")
		}
		arr := []float64{1, 3, 9, 14, 30, 31, 55}
		return sim.MustRun(&trace.Trace{Horizon: 120, Arrivals: arr})
	}
	a, b := run(nil), run(&faults.Plan{Seed: 42})
	if a.TotalCost != b.TotalCost || a.Completed != b.Completed ||
		len(a.E2E) != len(b.E2E) {
		t.Fatalf("zero-fault stats diverged: %+v vs %+v", a, b)
	}
	for i := range a.E2E {
		if a.E2E[i] != b.E2E[i] {
			t.Fatalf("E2E[%d] diverged: %v vs %v", i, a.E2E[i], b.E2E[i])
		}
	}
}

func TestFaultedRunDeterministic(t *testing.T) {
	run := func() *RunStats {
		plan := &faults.Plan{
			Default: faults.Rates{InitFail: 0.2, ExecFail: 0.15, Straggler: 0.2, StragglerFactor: 6},
			Outages: []faults.Outage{{Node: 0, Start: 40, End: 70}},
			Seed:    9,
		}
		sim := MustNew(Config{App: apps.ImageQuery(), SLA: 4, Seed: 11, Faults: plan},
			retryDriver(faults.RetryPolicy{MaxAttempts: 3, Timeout: 8, BaseBackoff: 0.1, JitterFrac: 0.3}, 0))
		arr := []float64{1, 3, 9, 14, 30, 31, 55, 80, 81, 100}
		return sim.MustRun(&trace.Trace{Horizon: 150, Arrivals: arr})
	}
	a, b := run(), run()
	if a.TotalCost != b.TotalCost || a.Completed != b.Completed ||
		a.FailedInvocations != b.FailedInvocations || a.Retries != b.Retries ||
		a.Stragglers != b.Stragglers {
		t.Fatalf("faulted run not deterministic:\n%+v\n%+v", a, b)
	}
}

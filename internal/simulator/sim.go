package simulator

import (
	"container/heap"
	"fmt"

	"math/rand"
	"sort"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
	"smiless/internal/trace"
)

// Directive is the per-function policy a Driver installs: the realized form
// of (⋆_k, △_k) plus the Auto-scaler's batch and instance counts.
type Directive struct {
	// Config is the hardware configuration for new instances.
	Config hardware.Config
	// Policy selects the cold-start behaviour after a batch completes.
	Policy coldstart.Policy
	// KeepAlive is how long an idle instance survives before termination
	// (KeepAlive/AlwaysOn policies; AlwaysOn ignores it and never expires).
	KeepAlive float64
	// PrewarmLead is the estimated initialization time used to schedule
	// pre-warm starts (μ + n·σ from the profile).
	PrewarmLead float64
	// PathOffset is the predicted delay from request arrival until this
	// function's input is ready (sum of upstream critical-path inference
	// times); used by reactive pre-warming.
	PathOffset float64
	// PrewarmOnArrival launches initialization when an application request
	// arrives, timed so it completes as the function's input arrives
	// (Orion-style "right pre-warming", also SMIless' fallback when a
	// predicted arrival was missed).
	PrewarmOnArrival bool
	// Batch is the maximum invocations executed together per instance.
	Batch int
	// Instances caps reactively launched concurrent instances.
	Instances int
	// MinWarm keeps at least this many instances resident: an idle
	// timeout that would drop the live count below MinWarm re-arms
	// instead of terminating.
	MinWarm int
}

// normalized fills defaults.
func (d Directive) normalized() Directive {
	if d.Batch < 1 {
		d.Batch = 1
	}
	if d.Instances < 1 {
		d.Instances = 1
	}
	return d
}

// Driver is the decision-making system under evaluation (SMIless or a
// baseline). It installs Directives and may schedule pre-warms.
type Driver interface {
	// Name labels the system in experiment output.
	Name() string
	// Setup is called once before the run; the driver installs initial
	// directives here.
	Setup(sim *Simulator)
	// OnWindow is called at every decision-window boundary with the
	// current time; the driver may update directives, schedule pre-warms
	// and rescale.
	OnWindow(sim *Simulator, now float64)
}

// container states.
const (
	cInitializing = iota
	cIdle
	cBusy
	cDead
)

type container struct {
	id        int
	fn        *fnState
	cfg       hardware.Config
	state     int
	initStart float64
	warmAt    float64
	idleEpoch int
	node      int
	assigned  []*nodeInv // waiting to run when init completes
	batch     []*nodeInv // currently executing
	prewarmed bool       // launched by a pre-warm, not by a waiting request
}

type fnState struct {
	id         dag.NodeID
	spec       *apps.FunctionSpec
	directive  Directive
	containers map[int]*container
	queue      []*nodeInv
	inits      int
}

// liveCount returns containers not dead.
func (f *fnState) liveCount() int {
	n := 0
	for _, c := range f.containers {
		if c.state != cDead {
			n++
		}
	}
	return n
}

type appInv struct {
	id        int
	arrival   float64
	pending   map[dag.NodeID]int // unfinished predecessor count
	done      map[dag.NodeID]bool
	remaining int
}

type nodeInv struct {
	inv     *appInv
	node    dag.NodeID
	readyAt float64
}

// Config parameterizes a simulation run.
type Config struct {
	App     *apps.Application
	Cluster hardware.ClusterSpec
	Pricing hardware.Pricing
	// SLA is the end-to-end latency bound in seconds.
	SLA float64
	// Window is the decision-window length; the paper uses one second.
	Window float64
	// StatsAfter excludes requests arriving before this time from the
	// latency/violation statistics: the measurement warm-up, during which
	// predictors train and the initial plan converges. Cost is always
	// accounted for the full run. Zero measures everything.
	StatsAfter float64
	// GPUContention scales the latency penalty for co-located MPS slices:
	// an instance holding share s on a node with u percent total GPU usage
	// runs (1 + GPUContention·(u−s)/100)× slower — the PCIe/memory
	// bandwidth sharing the paper mitigates with the 10% allocation floor
	// (§IV-A2). Zero disables contention.
	GPUContention float64
	// Seed drives all sampled timings.
	Seed int64
}

// Simulator runs one (application, driver, trace) evaluation.
type Simulator struct {
	cfg     Config
	driver  Driver
	rng     *rand.Rand
	cluster *clusterState

	now    float64
	events eventHeap
	seq    int

	fns           map[dag.NodeID]*fnState
	conts         map[int]*container
	nextCont      int
	nextInv       int
	pendingLaunch []*container // waiting for cluster capacity

	arrivalsThisWindow int
	counts             []int // per-window arrival history
	arrivalTimes       []float64

	stats   *RunStats
	horizon float64
}

// New prepares a simulator for the given run configuration and driver.
func New(cfg Config, driver Driver) *Simulator {
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.SLA <= 0 {
		cfg.SLA = 2
	}
	if cfg.Cluster.Nodes == nil {
		cfg.Cluster = hardware.DefaultCluster()
	}
	if cfg.Pricing == (hardware.Pricing{}) {
		cfg.Pricing = hardware.DefaultPricing
	}
	s := &Simulator{
		cfg:     cfg,
		driver:  driver,
		rng:     mathx.NewRand(cfg.Seed),
		cluster: newClusterState(cfg.Cluster),
		fns:     make(map[dag.NodeID]*fnState),
		conts:   make(map[int]*container),
		stats:   newRunStats(cfg.SLA),
	}
	for _, id := range cfg.App.Graph.Nodes() {
		s.fns[id] = &fnState{
			id:         id,
			spec:       cfg.App.Spec(id),
			containers: make(map[int]*container),
			directive: Directive{
				Config: hardware.Config{Kind: hardware.CPU, Cores: 1},
				Policy: coldstart.KeepAlive,
				Batch:  1, Instances: 1, KeepAlive: 60,
			},
		}
	}
	return s
}

// --- Driver-facing API -------------------------------------------------

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// App returns the application under test.
func (s *Simulator) App() *apps.Application { return s.cfg.App }

// SLA returns the run's SLA bound.
func (s *Simulator) SLA() float64 { return s.cfg.SLA }

// Window returns the decision-window length.
func (s *Simulator) Window() float64 { return s.cfg.Window }

// SetDirective installs the directive for one function and re-dispatches
// any queued work under the new policy (e.g. a burst rescale must be able
// to launch instances for a backlog that accumulated under the old caps).
func (s *Simulator) SetDirective(id dag.NodeID, d Directive) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	fs.directive = d.normalized()
	if len(fs.queue) > 0 {
		s.pump(fs)
	}
}

// GetDirective returns the current directive for one function.
func (s *Simulator) GetDirective(id dag.NodeID) Directive {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	return fs.directive
}

// CountsHistory returns completed per-window arrival counts so far.
func (s *Simulator) CountsHistory() []int {
	return append([]int(nil), s.counts...)
}

// ArrivalTimes returns all application arrival timestamps observed so far.
func (s *Simulator) ArrivalTimes() []float64 {
	return append([]float64(nil), s.arrivalTimes...)
}

// QueueLen returns the number of ready-but-undispatched invocations of a
// function, letting drivers detect backlog.
func (s *Simulator) QueueLen(id dag.NodeID) int { return len(s.fns[id].queue) }

// LiveInstances returns the number of live containers for a function.
func (s *Simulator) LiveInstances(id dag.NodeID) int { return s.fns[id].liveCount() }

// EnsureConfigInstance launches one instance of the function's current
// directive configuration unless one is already live (idle, busy or
// initializing). Drivers call it after a re-plan changes a function's
// flavor: the replacement warms in the background while the previous
// generation keeps serving, making the transition hitless.
func (s *Simulator) EnsureConfigInstance(id dag.NodeID) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	for _, c := range fs.containers {
		if c.state != cDead && c.cfg == fs.directive.Config {
			return
		}
	}
	s.launch(fs, fs.directive.Config, true)
}

// EnsureInstances launches instances of the function's current directive
// config until n are live (bounded by the directive's Instances cap). Used
// by drivers that pre-scale ahead of a predicted burst.
func (s *Simulator) EnsureInstances(id dag.NodeID, n int) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	if n > fs.directive.Instances {
		n = fs.directive.Instances
	}
	for fs.liveCount() < n {
		s.launch(fs, fs.directive.Config, true)
	}
}

// HasWarmMatching reports whether an idle or busy instance of the
// function's current directive configuration exists.
func (s *Simulator) HasWarmMatching(id dag.NodeID) bool {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	for _, c := range fs.containers {
		if (c.state == cIdle || c.state == cBusy) && c.cfg == fs.directive.Config {
			return true
		}
	}
	return false
}

// RetireMismatched terminates idle instances whose configuration no longer
// matches the directive, keeping at least MinWarm live instances. Drivers
// call it after a re-plan once a matching instance is warm, so fleets do
// not pay for two generations of configuration at once.
func (s *Simulator) RetireMismatched(id dag.NodeID) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	ids := make([]int, 0, len(fs.containers))
	for cid := range fs.containers {
		ids = append(ids, cid)
	}
	sort.Ints(ids)
	for _, cid := range ids {
		c := fs.containers[cid]
		if c != nil && c.state == cIdle && c.cfg != fs.directive.Config &&
			fs.liveCount() > fs.directive.MinWarm+1 {
			s.terminate(c)
		}
	}
}

// FunctionCost returns the cost attributable to one function so far:
// terminated containers' billed cost plus live containers' accrual.
func (s *Simulator) FunctionCost(id dag.NodeID) float64 {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	total := s.stats.CostPerFn[string(id)]
	for _, c := range fs.containers {
		if c.state != cDead {
			total += (s.now - c.initStart) * s.cfg.Pricing.UnitCost(c.cfg)
		}
	}
	return total
}

// Stats exposes the run statistics accumulated so far. Cost totals reflect
// terminated containers only; add AccruedCost for live instances.
func (s *Simulator) Stats() *RunStats { return s.stats }

// AccruedCost returns the cost accrued by still-live containers (billed
// from their initialization start to now).
func (s *Simulator) AccruedCost() float64 {
	total := 0.0
	for _, c := range s.conts {
		if c.state != cDead {
			total += (s.now - c.initStart) * s.cfg.Pricing.UnitCost(c.cfg)
		}
	}
	return total
}

// SchedulePrewarm asks for a warm instance of fn at time at: initialization
// is scheduled to start at max(now, at − PrewarmLead) unless a live
// instance already exists or will be warm in time.
func (s *Simulator) SchedulePrewarm(id dag.NodeID, at float64) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	start := coldstart.PrewarmStart(s.now, at, fs.directive.PrewarmLead)
	s.schedule(&event{at: start, kind: evPrewarm, fn: string(id)})
}

// --- Run loop ----------------------------------------------------------

func (s *Simulator) schedule(e *event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.events, e)
}

// Run replays the trace through the simulator and returns the collected
// statistics. The run ends when all requests have completed (or the safety
// horizon of trace.Horizon + 600 s is reached).
func (s *Simulator) Run(tr *trace.Trace) *RunStats {
	for _, at := range tr.Arrivals {
		s.schedule(&event{at: at, kind: evArrival})
	}
	s.horizon = tr.Horizon + 600
	for w := s.cfg.Window; w <= tr.Horizon+s.cfg.Window; w += s.cfg.Window {
		s.schedule(&event{at: w, kind: evWindow})
	}
	s.driver.Setup(s)

	outstanding := tr.Len()
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > s.horizon {
			break
		}
		if e.at < s.now-1e-9 {
			panic(fmt.Sprintf("simulator: time travel %.6f -> %.6f", s.now, e.at))
		}
		s.now = e.at
		switch e.kind {
		case evArrival:
			s.onArrival()
		case evInitDone:
			s.onInitDone(e.cid)
		case evExecDone:
			s.onExecDone(e.cid)
		case evIdleTimeout:
			s.onIdleTimeout(e.cid, e.epoch)
		case evPrewarm:
			s.onPrewarm(dag.NodeID(e.fn))
		case evWindow:
			s.counts = append(s.counts, s.arrivalsThisWindow)
			s.arrivalsThisWindow = 0
			s.driver.OnWindow(s, s.now)
			s.samplePods()
		}
		if s.stats.Completed == outstanding && s.allIdle() && s.now > tr.Horizon {
			break
		}
	}
	s.finish()
	return s.stats
}

func (s *Simulator) allIdle() bool {
	for _, fs := range s.fns {
		if len(fs.queue) > 0 {
			return false
		}
		for _, c := range fs.containers {
			if c.state == cBusy || c.state == cInitializing {
				return false
			}
		}
	}
	return true
}

// finish terminates all containers and finalizes accounting. Containers
// are terminated in id order so floating-point cost accumulation is
// deterministic run to run.
func (s *Simulator) finish() {
	ids := make([]int, 0, len(s.conts))
	for id := range s.conts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if c := s.conts[id]; c != nil && c.state != cDead {
			s.terminate(c)
		}
	}
}

// --- Event handlers ----------------------------------------------------

func (s *Simulator) onArrival() {
	s.arrivalsThisWindow++
	s.arrivalTimes = append(s.arrivalTimes, s.now)
	g := s.cfg.App.Graph
	inv := &appInv{
		id:        s.nextInv,
		arrival:   s.now,
		pending:   make(map[dag.NodeID]int, g.Len()),
		done:      make(map[dag.NodeID]bool, g.Len()),
		remaining: g.Len(),
	}
	s.nextInv++
	for _, id := range g.Nodes() {
		inv.pending[id] = len(g.Predecessors(id))
	}
	// Reactive pre-warming for functions that request it.
	for _, id := range g.Nodes() {
		fs := s.fns[id]
		if fs.directive.PrewarmOnArrival && len(g.Predecessors(id)) > 0 {
			s.SchedulePrewarm(id, s.now+fs.directive.PathOffset)
		}
	}
	// Entry function becomes ready immediately.
	for _, src := range g.Sources() {
		s.enqueue(&nodeInv{inv: inv, node: src, readyAt: s.now})
	}
}

// enqueue adds a ready node invocation and attempts dispatch.
func (s *Simulator) enqueue(ni *nodeInv) {
	fs := s.fns[ni.node]
	fs.queue = append(fs.queue, ni)
	s.pump(fs)
}

// pump dispatches queued invocations onto available containers, launching
// new instances when the directive allows.
func (s *Simulator) pump(fs *fnState) {
	for len(fs.queue) > 0 {
		d := fs.directive
		// 1. An idle warm container.
		if c := s.pickIdle(fs); c != nil {
			s.startBatch(c)
			continue
		}
		// 2. Busy warm containers absorb small overlaps: joining the next
		// batch costs at most one inference cycle, which beats waiting out
		// a cold initialization on a fresh instance.
		busy := 0
		for _, c := range fs.containers {
			if c.state == cBusy {
				busy++
			}
		}
		if busy > 0 && len(fs.queue) <= busy*d.Batch {
			return
		}
		// 3. An initializing container with spare assignment capacity.
		// Capacity-blocked launches (not placed on a node yet) do not
		// accept work: binding requests to a container that may never be
		// scheduled would strand them.
		if c := s.pickInitializing(fs); c != nil {
			n := d.Batch - len(c.assigned)
			take := n
			if take > len(fs.queue) {
				take = len(fs.queue)
			}
			c.assigned = append(c.assigned, fs.queue[:take]...)
			fs.queue = fs.queue[take:]
			continue
		}
		// 4. Launch a new instance if under the cap. If the cluster is out
		// of capacity the launch queues unplaced and takes no work; the
		// requests stay in the function queue for whichever instance frees
		// up first.
		if fs.liveCount() < d.Instances {
			c := s.launch(fs, d.Config, false)
			if c.node < 0 {
				return
			}
			take := d.Batch
			if take > len(fs.queue) {
				take = len(fs.queue)
			}
			c.assigned = append(c.assigned, fs.queue[:take]...)
			fs.queue = fs.queue[take:]
			continue
		}
		// 5. Saturated: wait for a container to free up.
		return
	}
}

func (s *Simulator) pickIdle(fs *fnState) *container {
	var best *container
	for _, c := range fs.containers {
		if c.state == cIdle && (best == nil || c.id < best.id) {
			best = c
		}
	}
	return best
}

func (s *Simulator) pickInitializing(fs *fnState) *container {
	var best *container
	for _, c := range fs.containers {
		if c.state == cInitializing && c.node >= 0 && len(c.assigned) < fs.directive.Batch &&
			(best == nil || c.id < best.id) {
			best = c
		}
	}
	return best
}

// launch starts a new container (cold start). When the cluster lacks
// capacity the launch queues until resources free.
func (s *Simulator) launch(fs *fnState, cfg hardware.Config, prewarmed bool) *container {
	c := &container{
		id: s.nextCont, fn: fs, cfg: cfg, state: cInitializing,
		initStart: s.now, prewarmed: prewarmed, node: -1,
	}
	s.nextCont++
	fs.containers[c.id] = c
	s.conts[c.id] = c
	fs.inits++
	s.stats.Inits++
	node, ok := s.cluster.allocate(cfg)
	if !ok {
		s.pendingLaunch = append(s.pendingLaunch, c)
		s.stats.CapacityBlocked++
		return c
	}
	c.node = node
	dur := fs.spec.SampleInit(s.rng, cfg)
	c.warmAt = s.now + dur
	s.schedule(&event{at: c.warmAt, kind: evInitDone, cid: c.id})
	return c
}

func (s *Simulator) onInitDone(cid int) {
	c := s.conts[cid]
	if c == nil || c.state != cInitializing {
		return
	}
	c.state = cIdle
	s.stats.WarmStarts++
	fs := c.fn
	if len(c.assigned) > 0 {
		// Work waited for this initialization: the cold start was on the
		// request path.
		s.stats.InitGated++
		s.startBatch(c)
		return
	}
	// Pre-warmed and nothing waiting: idle with keep-alive timer.
	s.armIdleTimer(c)
	s.pump(fs)
}

// startBatch moves assigned/queued work onto the container and runs it.
func (s *Simulator) startBatch(c *container) {
	fs := c.fn
	d := fs.directive
	batch := c.assigned
	c.assigned = nil
	for len(batch) < d.Batch && len(fs.queue) > 0 {
		batch = append(batch, fs.queue[0])
		fs.queue = fs.queue[1:]
	}
	if len(batch) == 0 {
		return
	}
	c.state = cBusy
	c.batch = batch
	c.idleEpoch++ // invalidate any pending idle timer
	dur := fs.spec.SampleInference(s.rng, c.cfg, len(batch))
	if s.cfg.GPUContention > 0 && c.cfg.Kind == hardware.GPU && c.node >= 0 {
		others := s.cluster.usedGPUOnNode(c.node) - c.cfg.GPUShare
		if others > 0 {
			dur *= 1 + s.cfg.GPUContention*float64(others)/100
		}
	}
	s.stats.Executions++
	s.stats.BatchSum += len(batch)
	s.schedule(&event{at: s.now + dur, kind: evExecDone, cid: c.id})
}

func (s *Simulator) onExecDone(cid int) {
	c := s.conts[cid]
	if c == nil || c.state != cBusy {
		return
	}
	batch := c.batch
	c.batch = nil
	c.state = cIdle
	fs := c.fn

	// Complete each node invocation and release successors.
	g := s.cfg.App.Graph
	for _, ni := range batch {
		inv := ni.inv
		if inv.done[ni.node] {
			continue
		}
		inv.done[ni.node] = true
		inv.remaining--
		for _, succ := range g.Successors(ni.node) {
			inv.pending[succ]--
			if inv.pending[succ] == 0 {
				s.enqueue(&nodeInv{inv: inv, node: succ, readyAt: s.now})
			}
		}
		if inv.remaining == 0 {
			s.completeInvocation(inv)
		}
	}

	// More queued work? Keep the instance busy.
	if len(fs.queue) > 0 {
		s.startBatch(c)
		return
	}
	// Apply the cold-start policy.
	switch fs.directive.Policy {
	case coldstart.Prewarm, coldstart.NoMitigation:
		s.terminate(c)
	case coldstart.KeepAlive:
		s.armIdleTimer(c)
	case coldstart.AlwaysOn:
		// Stays resident; no timer.
	}
}

func (s *Simulator) armIdleTimer(c *container) {
	d := c.fn.directive
	if d.Policy == coldstart.AlwaysOn {
		return
	}
	ka := d.KeepAlive
	if ka <= 0 {
		// Grace period for drivers that leave KeepAlive unset: long
		// enough that a pre-warmed instance arriving slightly early is
		// not reaped before its request.
		ka = 10 * s.cfg.Window
	}
	c.idleEpoch++
	s.schedule(&event{at: s.now + ka, kind: evIdleTimeout, cid: c.id, epoch: c.idleEpoch})
}

func (s *Simulator) onIdleTimeout(cid, epoch int) {
	c := s.conts[cid]
	if c == nil || c.state != cIdle || c.idleEpoch != epoch {
		return
	}
	if c.fn.liveCount() <= c.fn.directive.MinWarm {
		s.armIdleTimer(c) // floor reached: stay resident, check again later
		return
	}
	s.terminate(c)
}

func (s *Simulator) terminate(c *container) {
	if c.state == cDead {
		return
	}
	// Requeue any assigned-but-unstarted work.
	if len(c.assigned) > 0 {
		c.fn.queue = append(c.assigned, c.fn.queue...)
		c.assigned = nil
	}
	c.state = cDead
	if c.node >= 0 {
		s.cluster.release(c.node, c.cfg)
		s.drainPendingLaunches()
	} else {
		// Never placed: remove from the pending queue.
		for i, p := range s.pendingLaunch {
			if p.id == c.id {
				s.pendingLaunch = append(s.pendingLaunch[:i], s.pendingLaunch[i+1:]...)
				break
			}
		}
	}
	life := s.now - c.initStart
	cost := life * s.cfg.Pricing.UnitCost(c.cfg)
	s.stats.addCost(string(c.fn.id), c.cfg, life, cost)
	delete(c.fn.containers, c.id)
	delete(s.conts, c.id)
}

// drainPendingLaunches starts queued launches that now fit.
func (s *Simulator) drainPendingLaunches() {
	remaining := s.pendingLaunch[:0]
	for _, c := range s.pendingLaunch {
		if c.state != cInitializing {
			continue
		}
		node, ok := s.cluster.allocate(c.cfg)
		if !ok {
			remaining = append(remaining, c)
			continue
		}
		c.node = node
		dur := c.fn.spec.SampleInit(s.rng, c.cfg)
		c.warmAt = s.now + dur
		s.schedule(&event{at: c.warmAt, kind: evInitDone, cid: c.id})
	}
	s.pendingLaunch = remaining
	// Placed launches can now accept queued work once warm; nothing to do
	// here — onInitDone pumps.
}

func (s *Simulator) completeInvocation(inv *appInv) {
	e2e := s.now - inv.arrival
	s.stats.Completed++
	if inv.arrival < s.cfg.StatsAfter {
		return // measurement warm-up: not part of the reported statistics
	}
	s.stats.E2E = append(s.stats.E2E, e2e)
	s.stats.E2EArrival = append(s.stats.E2EArrival, inv.arrival)
	if e2e > s.cfg.SLA {
		s.stats.Violations++
	}
}

func (s *Simulator) onPrewarm(id dag.NodeID) {
	fs := s.fns[id]
	// An idle or initializing instance already satisfies the pre-warm
	// goal. A busy instance does too unless the policy terminates it
	// after its current batch (Prewarm/NoMitigation), in which case it
	// will not be available for the next request.
	terminating := fs.directive.Policy == coldstart.Prewarm || fs.directive.Policy == coldstart.NoMitigation
	for _, c := range fs.containers {
		switch c.state {
		case cIdle, cInitializing:
			return
		case cBusy:
			if !terminating {
				return
			}
		}
	}
	if fs.liveCount() >= fs.directive.Instances {
		return
	}
	s.launch(fs, fs.directive.Config, true)
}

// samplePods records pod-count and backend-usage series each window.
func (s *Simulator) samplePods() {
	cpuPods, gpuPods := 0, 0
	for _, c := range s.conts {
		if c.state == cDead {
			continue
		}
		if c.cfg.Kind == hardware.CPU {
			cpuPods++
		} else {
			gpuPods++
		}
	}
	s.stats.PodSamples = append(s.stats.PodSamples, PodSample{
		Time: s.now, CPU: cpuPods, GPU: gpuPods,
		Arrivals: s.lastWindowCount(),
	})
}

func (s *Simulator) lastWindowCount() int {
	if len(s.counts) == 0 {
		return 0
	}
	return s.counts[len(s.counts)-1]
}

package simulator

import (
	"container/heap"
	"errors"
	"fmt"

	"math/rand"
	"sort"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/faults"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
	"smiless/internal/placement"
	"smiless/internal/trace"
	"smiless/internal/tracing"
	"smiless/internal/units"
)

// Directive is the per-function policy a Driver installs: the realized form
// of (⋆_k, △_k) plus the Auto-scaler's batch and instance counts.
type Directive struct {
	// Config is the hardware configuration for new instances.
	Config hardware.Config
	// Policy selects the cold-start behaviour after a batch completes.
	Policy coldstart.Policy
	// KeepAlive is how long an idle instance survives before termination
	// (KeepAlive/AlwaysOn policies; AlwaysOn ignores it and never expires).
	KeepAlive float64
	// PrewarmLead is the estimated initialization time used to schedule
	// pre-warm starts (μ + n·σ from the profile).
	PrewarmLead float64
	// PathOffset is the predicted delay from request arrival until this
	// function's input is ready (sum of upstream critical-path inference
	// times); used by reactive pre-warming.
	PathOffset float64
	// PrewarmOnArrival launches initialization when an application request
	// arrives, timed so it completes as the function's input arrives
	// (Orion-style "right pre-warming", also SMIless' fallback when a
	// predicted arrival was missed).
	PrewarmOnArrival bool
	// Batch is the maximum invocations executed together per instance.
	Batch int
	// Instances caps reactively launched concurrent instances.
	Instances int
	// MinWarm keeps at least this many instances resident: an idle
	// timeout that would drop the live count below MinWarm re-arms
	// instead of terminating.
	MinWarm int
	// Retry is the gateway's recovery policy for this function: a
	// per-attempt timeout plus exponential backoff with jitter. The zero
	// value disables both (failed work is lost when faults are injected
	// and no retry policy is installed).
	Retry faults.RetryPolicy
	// HedgeDelay launches a duplicate of a single-invocation execution on
	// a second warm instance once the first has run this long; the first
	// completion wins and the loser is discarded (0 disables hedging).
	HedgeDelay float64
}

// normalized fills defaults.
func (d Directive) normalized() Directive {
	if d.Batch < 1 {
		d.Batch = 1
	}
	if d.Instances < 1 {
		d.Instances = 1
	}
	return d
}

// Driver is the decision-making system under evaluation (SMIless or a
// baseline). It installs Directives and may schedule pre-warms. Drivers are
// written against the ControlPlane interface, so the same driver runs on the
// discrete-event simulator and on the wall-clock serving runtime
// (internal/serving) unchanged.
type Driver interface {
	// Name labels the system in experiment output.
	Name() string
	// Setup is called once before the run; the driver installs initial
	// directives here.
	Setup(cp ControlPlane)
	// OnWindow is called at every decision-window boundary with the
	// current time; the driver may update directives, schedule pre-warms
	// and rescale.
	OnWindow(cp ControlPlane, now float64)
}

// container states.
const (
	cInitializing = iota
	cIdle
	cBusy
	cDead
)

type container struct {
	id        int
	fn        *fnState
	cfg       hardware.Config
	state     int
	initStart units.Duration
	warmAt    units.Duration
	idleEpoch int
	batchSeq  int // validates in-flight timeout/hedge/failure events
	node      int
	assigned  []*nodeInv // waiting to run when init completes
	batch     []*nodeInv // currently executing
	prewarmed bool       // launched by a pre-warm, not by a waiting request
}

// latWindow is the per-function ring of recent execution durations backing
// ExecLatencyQuantile (hedging thresholds).
const latWindow = 64

type fnState struct {
	id         dag.NodeID
	spec       *apps.FunctionSpec
	directive  Directive
	containers map[int]*container
	queue      []*nodeInv
	inits      int

	// Resilience bookkeeping: recent execution durations (ring buffer)
	// and failure/success counts for breaker-driving drivers.
	execLat   []float64
	latPos    int
	initFails int
	execFails int
	successes int
}

// recordLatency appends one execution duration to the ring.
func (f *fnState) recordLatency(d float64) {
	if len(f.execLat) < latWindow {
		f.execLat = append(f.execLat, d)
		return
	}
	f.execLat[f.latPos] = d
	f.latPos = (f.latPos + 1) % latWindow
}

// liveCount returns containers not dead.
func (f *fnState) liveCount() int {
	n := 0
	for _, c := range f.containers {
		if c.state != cDead {
			n++
		}
	}
	return n
}

type appInv struct {
	id        int
	arrival   units.Duration
	pending   map[dag.NodeID]int // unfinished predecessor count
	done      map[dag.NodeID]bool
	remaining int
	failed    bool // a member exhausted its retries; the request is lost
}

type nodeInv struct {
	inv     *appInv
	node    dag.NodeID
	readyAt units.Duration

	// Resilience state: how many times this member has failed (crash,
	// timeout or eviction), whether a hedge twin has been launched for it,
	// and whether this member IS the hedge twin.
	attempts int
	hedged   bool
	isHedge  bool

	// span is the member's trace span when a recorder is attached (nil
	// otherwise; all NodeSpan methods are nil-safe).
	span *tracing.NodeSpan
}

// PlacementPolicy selects how launches are placed onto cluster nodes.
type PlacementPolicy int

const (
	// PlaceFirstFit scans nodes in index order and takes the first with
	// capacity — the default, byte-identical to earlier releases.
	PlaceFirstFit PlacementPolicy = iota
	// PlaceP2C routes by locality: a function's home node (a stable hash
	// of its name) keeps the launch while it has capacity, and overflow
	// forwards to the less loaded of two randomly sampled peers
	// (power-of-two-choices). Draws come from a dedicated placement RNG,
	// so enabling it never perturbs the ground-truth timing stream.
	PlaceP2C
	// PlacePack is affinity packing: among nodes with capacity, the launch
	// goes to the one already hosting the most same-class work (scored by
	// interference-weighted memory-bandwidth pressure), concentrating each
	// class on few nodes. Ties break to the lower index.
	PlacePack
	// PlaceSpread is interference spreading: the launch goes to the node
	// where the function's class sees the least co-location pressure,
	// trading locality for isolation. Ties break to the lower index.
	PlaceSpread
)

// Config parameterizes a simulation run.
type Config struct {
	App     *apps.Application
	Cluster hardware.ClusterSpec
	Pricing hardware.Pricing
	// Placement selects the node-placement policy (default PlaceFirstFit).
	Placement PlacementPolicy
	// GossipInterval is the health-detector tick period in seconds
	// (default 0.25). SuspectAfter and DownAfter are how long a node must
	// miss heartbeats before it is suspected (default 2×GossipInterval)
	// and declared down with its in-flight work failed over (default
	// 2×SuspectAfter). Only consulted when Faults carries NodeFaults.
	GossipInterval float64
	SuspectAfter   float64
	DownAfter      float64
	// SLA is the end-to-end latency bound in seconds.
	SLA float64
	// Window is the decision-window length; the paper uses one second.
	Window float64
	// StatsAfter excludes requests arriving before this time from the
	// latency/violation statistics: the measurement warm-up, during which
	// predictors train and the initial plan converges. Cost is always
	// accounted for the full run. Zero measures everything.
	StatsAfter float64
	// GPUContention scales the latency penalty for co-located MPS slices:
	// an instance holding share s on a node with u percent total GPU usage
	// runs (1 + GPUContention·(u−s)/100)× slower — the PCIe/memory
	// bandwidth sharing the paper mitigates with the 10% allocation floor
	// (§IV-A2). Zero disables contention.
	GPUContention float64
	// Interference is the optional co-location interference model
	// (internal/placement): when set, a container's sampled init and
	// inference durations are inflated by the model's slowdown over the
	// other live containers on its node. Nil — or a model whose slowdown
	// is exactly 1 everywhere — leaves every timing byte-identical to an
	// interference-blind run.
	Interference *placement.Model
	// PriceTrace is the optional spot-price scenario: container lifetimes
	// are billed at the in-effect multiplier (∫ multiplier dt × unit cost)
	// and the trace's preemption windows withdraw nodes, evicting their
	// containers with control-plane failover. Nil bills static on-demand
	// prices; FlatTrace(1) is bit-identical to nil.
	PriceTrace *hardware.PriceTrace
	// Seed drives all sampled timings.
	Seed int64
	// Faults is the optional failure-injection plan: crash probabilities,
	// straggler inflation and node outages. Nil (or a plan with all rates
	// zero and no outages) leaves every code path identical to a fault-free
	// run — the injector draws from its own RNG stream, so enabling it
	// never perturbs the ground-truth timing samples.
	Faults *faults.Plan
}

// injector is the fault source the simulator consults. It is satisfied by
// *faults.Injector; in-package tests install scripted fakes.
type injector interface {
	InitOutcome(fn string) (bool, float64)
	ExecOutcome(fn string) (bool, float64)
	StragglerFactor(fn string) float64
	Jitter() float64
}

// Simulator runs one (application, driver, trace) evaluation.
type Simulator struct {
	cfg    Config
	driver Driver
	rng    *rand.Rand
	// prng is the placement RNG: only PlaceP2C draws from it, so the
	// ground-truth timing stream (rng) is identical whichever placement
	// policy runs.
	prng    *rand.Rand
	cluster *clusterState

	// now and horizon are typed simulation time; the float64 driver-facing
	// API (Now, OnWindow) converts at the boundary.
	now    units.Duration
	events eventHeap
	seq    int

	fns           map[dag.NodeID]*fnState
	conts         map[int]*container
	nextCont      int
	nextInv       int
	pendingLaunch []*container // waiting for cluster capacity

	arrivalsThisWindow int
	counts             []int // per-window arrival history
	arrivalTimes       []float64

	stats   *RunStats
	horizon units.Duration

	// inj is non-nil only when Config.Faults enables injection; every
	// fault code path is gated on it so fault-free runs are bit-compatible
	// with builds that predate the subsystem.
	inj injector

	// rec is the optional span recorder (internal/tracing). Like inj, every
	// emission is gated on it being non-nil and the recorder only observes,
	// so traced and untraced runs are bit-compatible.
	rec *tracing.Recorder
}

// ConfigError reports an invalid Config field passed to New.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("simulator: invalid config: %s %s", e.Field, e.Reason)
}

// ErrEmptyTrace is returned by Run when the trace carries no arrivals.
var ErrEmptyTrace = errors.New("simulator: empty trace")

// New prepares a simulator for the given run configuration and driver. It
// returns a *ConfigError when the configuration is structurally invalid
// (nil driver, missing application, negative SLA or window); zero SLA and
// window still take their documented defaults.
func New(cfg Config, driver Driver) (*Simulator, error) {
	if driver == nil {
		return nil, &ConfigError{Field: "driver", Reason: "must not be nil"}
	}
	if cfg.App == nil || cfg.App.Graph == nil || cfg.App.Graph.Len() == 0 {
		return nil, &ConfigError{Field: "App", Reason: "must have a non-empty graph"}
	}
	if cfg.SLA < 0 {
		return nil, &ConfigError{Field: "SLA", Reason: "must not be negative"}
	}
	if cfg.Window < 0 {
		return nil, &ConfigError{Field: "Window", Reason: "must not be negative"}
	}
	if cfg.Window <= 0 {
		cfg.Window = 1
	}
	if cfg.SLA <= 0 {
		cfg.SLA = 2
	}
	if cfg.Cluster.Nodes == nil {
		cfg.Cluster = hardware.DefaultCluster()
	}
	if cfg.Pricing == (hardware.Pricing{}) {
		cfg.Pricing = hardware.DefaultPricing
	}
	if cfg.GossipInterval <= 0 {
		cfg.GossipInterval = 0.25
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 2 * cfg.GossipInterval
	}
	if cfg.DownAfter <= cfg.SuspectAfter {
		cfg.DownAfter = 2 * cfg.SuspectAfter
	}
	if cfg.Faults != nil {
		for _, o := range cfg.Faults.Outages {
			if o.Node < 0 || o.Node >= len(cfg.Cluster.Nodes) {
				return nil, &ConfigError{Field: "Faults.Outages", Reason: fmt.Sprintf("node %d out of range", o.Node)}
			}
		}
		for _, nf := range cfg.Faults.NodeFaults {
			if nf.Node < 0 || nf.Node >= len(cfg.Cluster.Nodes) {
				return nil, &ConfigError{Field: "Faults.NodeFaults", Reason: fmt.Sprintf("node %d out of range", nf.Node)}
			}
			if nf.Kind == faults.NodePartition && nf.End <= nf.Start {
				return nil, &ConfigError{Field: "Faults.NodeFaults", Reason: fmt.Sprintf("partition of node %d must have End > Start", nf.Node)}
			}
		}
	}
	if cfg.PriceTrace != nil {
		for _, w := range cfg.PriceTrace.Preemptions {
			if w.Node < 0 || w.Node >= len(cfg.Cluster.Nodes) {
				return nil, &ConfigError{Field: "PriceTrace.Preemptions", Reason: fmt.Sprintf("node %d out of range", w.Node)}
			}
			if w.End <= w.Start {
				return nil, &ConfigError{Field: "PriceTrace.Preemptions", Reason: fmt.Sprintf("window on node %d must have End > Start", w.Node)}
			}
		}
	}
	s := &Simulator{
		cfg:     cfg,
		driver:  driver,
		rng:     mathx.NewRand(cfg.Seed),
		prng:    mathx.NewRand(cfg.Seed ^ 0x9e3779b9),
		cluster: newClusterState(cfg.Cluster),
		fns:     make(map[dag.NodeID]*fnState),
		conts:   make(map[int]*container),
		stats:   newRunStats(cfg.SLA),
	}
	for _, id := range cfg.App.Graph.Nodes() {
		s.fns[id] = &fnState{
			id:         id,
			spec:       cfg.App.Spec(id),
			containers: make(map[int]*container),
			directive: Directive{
				Config: hardware.Config{Kind: hardware.CPU, Cores: 1},
				Policy: coldstart.KeepAlive,
				Batch:  1, Instances: 1, KeepAlive: 60,
			},
		}
	}
	// Guard against the typed-nil interface trap: only assign when the
	// injector is actually enabled.
	if in := faults.NewInjector(cfg.Faults); in != nil {
		s.inj = in
	}
	return s, nil
}

// MustNew is New that panics on configuration error, for tests and
// experiment harnesses whose configs are statically known to be valid.
func MustNew(cfg Config, driver Driver) *Simulator {
	s, err := New(cfg, driver)
	if err != nil {
		panic(err)
	}
	return s
}

// --- Driver-facing API -------------------------------------------------

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now.Seconds() }

// App returns the application under test.
func (s *Simulator) App() *apps.Application { return s.cfg.App }

// SLA returns the run's SLA bound.
func (s *Simulator) SLA() float64 { return s.cfg.SLA }

// Window returns the decision-window length.
func (s *Simulator) Window() float64 { return s.cfg.Window }

// SetDirective installs the directive for one function and re-dispatches
// any queued work under the new policy (e.g. a burst rescale must be able
// to launch instances for a backlog that accumulated under the old caps).
func (s *Simulator) SetDirective(id dag.NodeID, d Directive) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	fs.directive = d.normalized()
	if len(fs.queue) > 0 {
		s.pump(fs)
	}
}

// GetDirective returns the current directive for one function.
func (s *Simulator) GetDirective(id dag.NodeID) Directive {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	return fs.directive
}

// CountsHistory returns completed per-window arrival counts so far.
func (s *Simulator) CountsHistory() []int {
	return append([]int(nil), s.counts...)
}

// ArrivalTimes returns all application arrival timestamps observed so far.
func (s *Simulator) ArrivalTimes() []float64 {
	return append([]float64(nil), s.arrivalTimes...)
}

// QueueLen returns the number of ready-but-undispatched invocations of a
// function, letting drivers detect backlog.
func (s *Simulator) QueueLen(id dag.NodeID) int { return len(s.fns[id].queue) }

// LiveInstances returns the number of live containers for a function.
func (s *Simulator) LiveInstances(id dag.NodeID) int { return s.fns[id].liveCount() }

// EnsureConfigInstance launches one instance of the function's current
// directive configuration unless one is already live (idle, busy or
// initializing). Drivers call it after a re-plan changes a function's
// flavor: the replacement warms in the background while the previous
// generation keeps serving, making the transition hitless.
func (s *Simulator) EnsureConfigInstance(id dag.NodeID) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	for _, c := range fs.containers {
		if c.state != cDead && c.cfg == fs.directive.Config {
			return
		}
	}
	s.launch(fs, fs.directive.Config, true)
}

// EnsureInstances launches instances of the function's current directive
// config until n are live (bounded by the directive's Instances cap). Used
// by drivers that pre-scale ahead of a predicted burst.
func (s *Simulator) EnsureInstances(id dag.NodeID, n int) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	if n > fs.directive.Instances {
		n = fs.directive.Instances
	}
	for fs.liveCount() < n {
		s.launch(fs, fs.directive.Config, true)
	}
}

// HasWarmMatching reports whether an idle or busy instance of the
// function's current directive configuration exists.
func (s *Simulator) HasWarmMatching(id dag.NodeID) bool {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	for _, c := range fs.containers {
		if (c.state == cIdle || c.state == cBusy) && c.cfg == fs.directive.Config {
			return true
		}
	}
	return false
}

// RetireMismatched terminates idle instances whose configuration no longer
// matches the directive, keeping at least MinWarm live instances. Drivers
// call it after a re-plan once a matching instance is warm, so fleets do
// not pay for two generations of configuration at once.
func (s *Simulator) RetireMismatched(id dag.NodeID) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	ids := make([]int, 0, len(fs.containers))
	for cid := range fs.containers {
		ids = append(ids, cid)
	}
	sort.Ints(ids)
	for _, cid := range ids {
		c := fs.containers[cid]
		if c != nil && c.state == cIdle && c.cfg != fs.directive.Config &&
			fs.liveCount() > fs.directive.MinWarm+1 {
			s.terminate(c)
		}
	}
}

// FunctionCost returns the cost attributable to one function so far:
// terminated containers' billed cost plus live containers' accrual.
func (s *Simulator) FunctionCost(id dag.NodeID) float64 {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	// Accrual is summed in container-id order: float addition is not
	// associative, and map-order summation would let the randomized
	// iteration order perturb driver decisions fed by this value.
	total := s.stats.CostPerFn[string(id)]
	for _, c := range sortedContainers(fs.containers) {
		if c.state != cDead {
			_, cost := s.billedLife(c)
			total += cost
		}
	}
	return total
}

// sortedContainers returns a map's containers ordered by id, so that
// floating-point accumulation over them is reproducible.
func sortedContainers(m map[int]*container) []*container {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*container, len(ids))
	for i, id := range ids {
		out[i] = m[id]
	}
	return out
}

// Stats exposes the run statistics accumulated so far. Cost totals reflect
// terminated containers only; add AccruedCost for live instances.
func (s *Simulator) Stats() *RunStats { return s.stats }

// AttachRecorder installs a span recorder for the run. Call before Run;
// attaching mid-run would leave earlier requests untraced. A nil recorder
// detaches tracing.
func (s *Simulator) AttachRecorder(r *tracing.Recorder) { s.rec = r }

// TraceRecorder returns the attached span recorder, or nil when the run is
// untraced. Drivers use it to emit decision-window instants.
func (s *Simulator) TraceRecorder() *tracing.Recorder { return s.rec }

// FaultsEnabled reports whether fault injection is active for this run.
// Drivers gate their resilience machinery (retry directives, hedging,
// circuit breakers) on it so fault-free runs stay bit-compatible.
func (s *Simulator) FaultsEnabled() bool { return s.inj != nil }

// ExecLatencyQuantile returns the p-th percentile (0–100) of the
// function's recent observed execution durations, or 0 with no samples
// yet. Drivers use it to place hedging thresholds.
func (s *Simulator) ExecLatencyQuantile(id dag.NodeID, p float64) float64 {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	return mathx.Percentile(fs.execLat, p)
}

// FnResilience returns the function's cumulative init failures, execution
// failures (crashes and timeouts; node evictions are excluded — they say
// nothing about the flavor) and successful batches — the raw feed for a
// driver's per-function circuit breaker.
func (s *Simulator) FnResilience(id dag.NodeID) (initFails, execFails, successes int) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	return fs.initFails, fs.execFails, fs.successes
}

// AccruedCost returns the cost accrued by still-live containers (billed
// from their initialization start to now).
func (s *Simulator) AccruedCost() float64 {
	total := 0.0
	for _, c := range sortedContainers(s.conts) {
		if c.state != cDead {
			_, cost := s.billedLife(c)
			total += cost
		}
	}
	return total
}

// SchedulePrewarm asks for a warm instance of fn at time at: initialization
// is scheduled to start at max(now, at − PrewarmLead) unless a live
// instance already exists or will be warm in time.
func (s *Simulator) SchedulePrewarm(id dag.NodeID, at float64) {
	fs, ok := s.fns[id]
	if !ok {
		panic(fmt.Sprintf("simulator: unknown function %q", id))
	}
	start := coldstart.PrewarmStart(s.now.Seconds(), at, fs.directive.PrewarmLead)
	s.schedule(&event{at: units.Seconds(start), kind: evPrewarm, fn: string(id)})
}

// --- Run loop ----------------------------------------------------------

func (s *Simulator) schedule(e *event) {
	s.seq++
	e.seq = s.seq
	heap.Push(&s.events, e)
}

// Run replays the trace through the simulator and returns the collected
// statistics. The run ends when all requests have resolved — completed or
// failed — (or the safety horizon of trace.Horizon + 600 s is reached). A
// nil or empty trace returns ErrEmptyTrace.
func (s *Simulator) Run(tr *trace.Trace) (*RunStats, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, ErrEmptyTrace
	}
	for _, at := range tr.Arrivals {
		s.schedule(&event{at: units.Seconds(at), kind: evArrival})
	}
	s.horizon = units.Seconds(tr.Horizon + 600)
	for w := s.cfg.Window; w <= tr.Horizon+s.cfg.Window; w += s.cfg.Window {
		s.schedule(&event{at: units.Seconds(w), kind: evWindow})
	}
	if s.cfg.Faults != nil {
		for _, o := range s.cfg.Faults.Outages {
			if o.End <= o.Start {
				continue
			}
			s.schedule(&event{at: units.Seconds(o.Start), kind: evNodeDown, cid: o.Node})
			s.schedule(&event{at: units.Seconds(o.End), kind: evNodeUp, cid: o.Node})
		}
		for _, nf := range s.cfg.Faults.NodeFaults {
			switch nf.Kind {
			case faults.NodeCrash:
				s.schedule(&event{at: units.Seconds(nf.Start), kind: evNodeCrash, cid: nf.Node})
				if nf.End > nf.Start {
					s.schedule(&event{at: units.Seconds(nf.End), kind: evNodeRestart, cid: nf.Node})
				}
			case faults.NodePartition:
				s.schedule(&event{at: units.Seconds(nf.Start), kind: evPartitionStart, cid: nf.Node})
				s.schedule(&event{at: units.Seconds(nf.End), kind: evPartitionEnd, cid: nf.Node})
			}
		}
		// The detector only runs when a fault plan can starve heartbeats;
		// plans without node faults stay byte-identical to earlier builds.
		if len(s.cfg.Faults.NodeFaults) > 0 {
			s.schedule(&event{at: units.Seconds(s.cfg.GossipInterval), kind: evGossip})
		}
	}
	if s.cfg.PriceTrace != nil {
		for _, w := range s.cfg.PriceTrace.Preemptions {
			s.schedule(&event{at: units.Seconds(w.Start), kind: evPreempt, cid: w.Node})
			s.schedule(&event{at: units.Seconds(w.End), kind: evPreemptEnd, cid: w.Node})
		}
	}
	s.driver.Setup(s)

	outstanding := tr.Len()
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > s.horizon {
			break
		}
		if e.at < s.now-1e-9 {
			panic(fmt.Sprintf("simulator: time travel %.6f -> %.6f", s.now.Seconds(), e.at.Seconds()))
		}
		s.now = e.at
		s.dispatch(e)
		if s.stats.Completed+s.stats.FailedInvocations >= outstanding && s.allIdle() && s.now.Seconds() > tr.Horizon {
			break
		}
	}
	s.finish()
	return s.stats, nil
}

// dispatch routes one due event to its handler. Node-side events (init and
// exec completions or crashes) from a crashed node are dropped — the work
// died with the process — and from a partitioned node they are held on the
// node and replayed in order when the partition heals.
func (s *Simulator) dispatch(e *event) {
	if e.nodeSide() {
		if c := s.conts[e.cid]; c != nil && c.node >= 0 {
			n := s.cluster.nodes[c.node]
			if !n.alive {
				return
			}
			if n.partitioned {
				n.held = append(n.held, e)
				return
			}
		}
	}
	switch e.kind {
	case evArrival:
		s.onArrival()
	case evInitDone:
		s.onInitDone(e.cid)
	case evExecDone:
		s.onExecDone(e.cid)
	case evIdleTimeout:
		s.onIdleTimeout(e.cid, e.epoch)
	case evPrewarm:
		s.onPrewarm(dag.NodeID(e.fn))
	case evInitFail:
		s.onInitFail(e.cid)
	case evExecFail:
		s.onExecFail(e.cid, e.epoch)
	case evExecTimeout:
		s.onExecTimeout(e.cid, e.epoch)
	case evHedge:
		s.onHedge(e.cid, e.epoch)
	case evRetry:
		s.onRetry(e.ni)
	case evNodeDown:
		s.onNodeDown(e.cid)
	case evNodeUp:
		s.onNodeUp(e.cid)
	case evNodeCrash:
		s.onNodeCrash(e.cid)
	case evNodeRestart:
		s.onNodeRestart(e.cid)
	case evPartitionStart:
		s.onPartitionStart(e.cid)
	case evPartitionEnd:
		s.onPartitionEnd(e.cid)
	case evGossip:
		s.onGossip()
	case evPreempt:
		s.onPreempt(e.cid)
	case evPreemptEnd:
		s.onPreemptEnd(e.cid)
	case evWindow:
		s.counts = append(s.counts, s.arrivalsThisWindow)
		s.arrivalsThisWindow = 0
		s.driver.OnWindow(s, s.now.Seconds())
		s.samplePods()
	}
}

// MustRun is Run that panics on error, for callers that construct the
// trace themselves and know it is non-empty.
func (s *Simulator) MustRun(tr *trace.Trace) *RunStats {
	st, err := s.Run(tr)
	if err != nil {
		panic(err)
	}
	return st
}

func (s *Simulator) allIdle() bool {
	for _, fs := range s.fns {
		if len(fs.queue) > 0 {
			return false
		}
		for _, c := range fs.containers {
			if c.state == cBusy || c.state == cInitializing {
				return false
			}
		}
	}
	return true
}

// finish terminates all containers and finalizes accounting. Containers
// are terminated in id order so floating-point cost accumulation is
// deterministic run to run.
func (s *Simulator) finish() {
	ids := make([]int, 0, len(s.conts))
	for id := range s.conts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if c := s.conts[id]; c != nil && c.state != cDead {
			s.terminate(c)
		}
	}
	// Requests that never resolved by the safety horizon (only possible
	// under fault injection: work stranded behind a dead node or an
	// exhausted queue) count as failed so availability reflects them.
	if unresolved := s.nextInv - s.stats.Completed - s.stats.FailedInvocations; unresolved > 0 {
		s.stats.FailedInvocations += unresolved
	}
	// Settle down time for nodes the detector still holds down at the end.
	if s.cfg.Faults != nil && len(s.cfg.Faults.NodeFaults) > 0 {
		for _, n := range s.cluster.nodes {
			if n.health == nodeDown && n.detectorDown {
				s.stats.NodeDownSeconds += s.now.Seconds() - n.downSince
			}
		}
	}
}

// --- Event handlers ----------------------------------------------------

func (s *Simulator) onArrival() {
	s.arrivalsThisWindow++
	s.arrivalTimes = append(s.arrivalTimes, s.now.Seconds())
	g := s.cfg.App.Graph
	inv := &appInv{
		id:        s.nextInv,
		arrival:   s.now,
		pending:   make(map[dag.NodeID]int, g.Len()),
		done:      make(map[dag.NodeID]bool, g.Len()),
		remaining: g.Len(),
	}
	s.nextInv++
	if s.rec != nil {
		s.rec.BeginRequest(inv.id, s.now.Seconds())
	}
	for _, id := range g.Nodes() {
		inv.pending[id] = len(g.Predecessors(id))
	}
	// Reactive pre-warming for functions that request it.
	for _, id := range g.Nodes() {
		fs := s.fns[id]
		if fs.directive.PrewarmOnArrival && len(g.Predecessors(id)) > 0 {
			s.SchedulePrewarm(id, s.now.Seconds()+fs.directive.PathOffset)
		}
	}
	// Entry function becomes ready immediately.
	for _, src := range g.Sources() {
		s.enqueue(&nodeInv{inv: inv, node: src, readyAt: s.now})
	}
}

// enqueue adds a ready node invocation and attempts dispatch.
func (s *Simulator) enqueue(ni *nodeInv) {
	if s.rec != nil && ni.span == nil {
		ni.span = s.rec.BeginNode(ni.inv.id, string(ni.node), s.now.Seconds(), ni.isHedge)
	}
	fs := s.fns[ni.node]
	fs.queue = append(fs.queue, ni)
	s.pump(fs)
}

// pump dispatches queued invocations onto available containers, launching
// new instances when the directive allows.
func (s *Simulator) pump(fs *fnState) {
	for len(fs.queue) > 0 {
		d := fs.directive
		// 1. An idle warm container.
		if c := s.pickIdle(fs); c != nil {
			s.startBatch(c, tracing.PhaseQueue)
			continue
		}
		// 2. Busy warm containers absorb small overlaps: joining the next
		// batch costs at most one inference cycle, which beats waiting out
		// a cold initialization on a fresh instance.
		// Containers on a node the detector holds down do not count: a
		// batch stuck behind a partition must not absorb the queue.
		busy := 0
		for _, c := range fs.containers {
			if c.state == cBusy && s.servable(c) {
				busy++
			}
		}
		if busy > 0 && len(fs.queue) <= busy*d.Batch {
			return
		}
		// 3. An initializing container with spare assignment capacity.
		// Capacity-blocked launches (not placed on a node yet) do not
		// accept work: binding requests to a container that may never be
		// scheduled would strand them.
		if c := s.pickInitializing(fs); c != nil {
			n := d.Batch - len(c.assigned)
			take := n
			if take > len(fs.queue) {
				take = len(fs.queue)
			}
			c.assigned = append(c.assigned, fs.queue[:take]...)
			fs.queue = fs.queue[take:]
			continue
		}
		// 4. Launch a new instance if under the cap. If the cluster is out
		// of capacity the launch queues unplaced and takes no work; the
		// requests stay in the function queue for whichever instance frees
		// up first.
		if fs.liveCount() < d.Instances {
			c := s.launch(fs, d.Config, false)
			if c.node < 0 {
				return
			}
			take := d.Batch
			if take > len(fs.queue) {
				take = len(fs.queue)
			}
			c.assigned = append(c.assigned, fs.queue[:take]...)
			fs.queue = fs.queue[take:]
			continue
		}
		// 5. Saturated: wait for a container to free up.
		return
	}
}

// servable reports whether the control plane will route new work to the
// container: its node must not be detected down (or suspect). Unplaced
// launches are handled separately by pickInitializing.
func (s *Simulator) servable(c *container) bool {
	return c.node < 0 || s.cluster.nodes[c.node].placeable()
}

func (s *Simulator) pickIdle(fs *fnState) *container {
	var best *container
	for _, c := range fs.containers {
		if c.state == cIdle && s.servable(c) && (best == nil || c.id < best.id) {
			best = c
		}
	}
	return best
}

func (s *Simulator) pickInitializing(fs *fnState) *container {
	var best *container
	for _, c := range fs.containers {
		if c.state == cInitializing && c.node >= 0 && s.servable(c) &&
			len(c.assigned) < fs.directive.Batch &&
			(best == nil || c.id < best.id) {
			best = c
		}
	}
	return best
}

// launch starts a new container (cold start). When the cluster lacks
// capacity the launch queues until resources free.
func (s *Simulator) launch(fs *fnState, cfg hardware.Config, prewarmed bool) *container {
	c := &container{
		id: s.nextCont, fn: fs, cfg: cfg, state: cInitializing,
		initStart: s.now, prewarmed: prewarmed, node: -1,
	}
	s.nextCont++
	fs.containers[c.id] = c
	s.conts[c.id] = c
	fs.inits++
	s.stats.Inits++
	node, ok := s.placeLaunch(fs.id, cfg)
	if !ok {
		s.pendingLaunch = append(s.pendingLaunch, c)
		s.stats.CapacityBlocked++
		return c
	}
	c.node = node
	s.beginInit(c)
	return c
}

// placeLaunch reserves a node for one launch under the configured placement
// policy, counting overflow forwards under PlaceP2C.
func (s *Simulator) placeLaunch(id dag.NodeID, cfg hardware.Config) (int, bool) {
	switch s.cfg.Placement {
	case PlaceP2C:
		node, forwarded, ok := s.cluster.allocateP2C(cfg, HomeNode(string(id), s.cluster.len()), s.prng)
		if ok && forwarded {
			s.stats.Forwards++
		}
		return node, ok
	case PlacePack:
		return s.placeAffinity(id, cfg, true)
	case PlaceSpread:
		return s.placeAffinity(id, cfg, false)
	}
	return s.cluster.allocate(cfg)
}

// placeAffinity scores every placeable node with capacity by the class
// pressure the launch would meet there, then packs (highest pressure wins:
// same-class work concentrates) or spreads (lowest pressure wins: the
// launch lands where it is interfered with least). Nodes are visited in
// index order and strict comparisons break ties to the lower index, so the
// choice is deterministic.
func (s *Simulator) placeAffinity(id dag.NodeID, cfg hardware.Config, pack bool) (int, bool) {
	class := placement.ClassOf(s.fns[id].spec.Field)
	best, bestScore := -1, 0.0
	for i, n := range s.cluster.nodes {
		if !n.placeable() || !n.fits(cfg) {
			continue
		}
		score := s.classPressure(i, class)
		if best < 0 || (pack && score > bestScore) || (!pack && score < bestScore) {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return -1, false
	}
	s.cluster.takeOn(best, cfg)
	return best, true
}

// classPressure sums the interference-weighted memory-bandwidth demand that
// node n's live containers exert on the given class. Without a configured
// interference model it degrades to the same-class resident demand, so the
// affinity policies still have a signal. Containers are visited in id order
// for reproducible float accumulation.
func (s *Simulator) classPressure(n int, class placement.Class) float64 {
	total := 0.0
	for _, c := range sortedContainers(s.conts) {
		if c.node != n || c.state == cDead {
			continue
		}
		rc := placement.ClassOf(c.fn.spec.Field)
		w := placement.DemandOf(c.cfg).MemBW
		if m := s.cfg.Interference; m != nil {
			total += m.Matrix.Coef(class, rc) * w
		} else if rc == class {
			total += w
		}
	}
	return total
}

// interferenceFactor returns the configured model's slowdown for container
// c against the other live containers on its node, visited in id order.
func (s *Simulator) interferenceFactor(c *container) float64 {
	var residents []placement.Resident
	for _, o := range sortedContainers(s.conts) {
		if o.id == c.id || o.node != c.node || o.state == cDead {
			continue
		}
		residents = append(residents, placement.Resident{
			Class: placement.ClassOf(o.fn.spec.Field),
			MemBW: placement.DemandOf(o.cfg).MemBW,
		})
	}
	return s.cfg.Interference.Slowdown(placement.ClassOf(c.fn.spec.Field), residents)
}

// beginInit samples the initialization duration for a placed container and
// schedules its completion — or, under fault injection, its crash partway
// through. The duration sample always comes from the ground-truth RNG so
// the fault-free stream is undisturbed.
func (s *Simulator) beginInit(c *container) {
	if s.rec != nil {
		s.rec.BeginInit(c.id, string(c.fn.id), c.cfg.String(), c.node, s.now.Seconds(), c.prewarmed)
	}
	dur := c.fn.spec.SampleInit(s.rng, c.cfg)
	if s.cfg.Interference != nil && c.node >= 0 {
		if f := s.interferenceFactor(c); f > 1 {
			s.stats.InterferedInits++
			s.stats.InterferenceSeconds += dur * (f - 1)
			dur *= f
		}
	}
	if s.inj != nil {
		if fail, frac := s.inj.InitOutcome(string(c.fn.id)); fail {
			s.schedule(&event{at: s.now + units.Seconds(dur*frac), kind: evInitFail, cid: c.id})
			return
		}
	}
	c.warmAt = s.now + units.Seconds(dur)
	s.schedule(&event{at: c.warmAt, kind: evInitDone, cid: c.id})
}

func (s *Simulator) onInitDone(cid int) {
	c := s.conts[cid]
	if c == nil || c.state != cInitializing {
		return
	}
	c.state = cIdle
	s.stats.WarmStarts++
	fs := c.fn
	if s.rec != nil {
		s.rec.EndInit(c.id, s.now.Seconds(), len(c.assigned) > 0, false)
	}
	if len(c.assigned) > 0 {
		// Work waited for this initialization: the cold start was on the
		// request path.
		s.stats.InitGated++
		s.startBatch(c, tracing.PhaseColdInit)
		if c.state == cIdle {
			// Only reachable under fault injection: every assigned member
			// failed before the init completed, so the batch came up empty
			// and the instance idles like a pre-warm.
			s.armIdleTimer(c)
			s.pump(fs)
		}
		return
	}
	// Pre-warmed and nothing waiting: idle with keep-alive timer.
	s.armIdleTimer(c)
	s.pump(fs)
}

// onInitFail handles an injected crash during initialization: the partial
// init time is still billed (the provider charges for the attempt, Eq. 3),
// assigned work returns to the queue, and pump relaunches — the natural
// retry for a cold start.
func (s *Simulator) onInitFail(cid int) {
	c := s.conts[cid]
	if c == nil || c.state != cInitializing {
		return
	}
	s.stats.InitFailures++
	c.fn.initFails++
	fs := c.fn
	s.terminate(c)
	s.pump(fs)
}

// startBatch moves assigned/queued work onto the container and runs it.
// Members whose request already failed (retries exhausted elsewhere in the
// DAG) are dropped rather than executed. cause classifies, for tracing, the
// wait each member just finished: a cold initialization the batch was gated
// on, a batch rotation on a busy instance, or plain queueing.
func (s *Simulator) startBatch(c *container, cause tracing.Phase) {
	fs := c.fn
	d := fs.directive
	batch := c.assigned[:0]
	for _, ni := range c.assigned {
		if !ni.inv.failed {
			batch = append(batch, ni)
		}
	}
	c.assigned = nil
	for len(batch) < d.Batch && len(fs.queue) > 0 {
		ni := fs.queue[0]
		fs.queue = fs.queue[1:]
		if ni.inv.failed {
			continue
		}
		batch = append(batch, ni)
	}
	if len(batch) == 0 {
		return
	}
	c.state = cBusy
	c.batch = batch
	c.idleEpoch++ // invalidate any pending idle timer
	c.batchSeq++  // validates timeout/hedge/crash events for this batch
	if s.rec != nil {
		now := s.now.Seconds()
		for _, ni := range batch {
			ni.span.Dispatch(now, cause, c.initStart.Seconds(), c.id,
				c.cfg.String(), d.Policy.String(), len(batch))
		}
		s.rec.BeginExec(c.id, string(fs.id), c.cfg.String(), c.node, now, len(batch))
	}
	dur := fs.spec.SampleInference(s.rng, c.cfg, len(batch))
	if s.cfg.GPUContention > 0 && c.cfg.Kind == hardware.GPU && c.node >= 0 {
		others := s.cluster.usedGPUOnNode(c.node) - c.cfg.GPUShare
		if others > 0 {
			dur *= 1 + s.cfg.GPUContention*float64(others)/100
		}
	}
	if s.cfg.Interference != nil && c.node >= 0 {
		if f := s.interferenceFactor(c); f > 1 {
			s.stats.InterferedBatches++
			s.stats.InterferenceSeconds += dur * (f - 1)
			dur *= f
		}
	}
	if s.inj != nil {
		if f := s.inj.StragglerFactor(string(fs.id)); f > 1 {
			dur *= f
			s.stats.Stragglers++
		}
	}
	fs.recordLatency(dur)
	s.stats.Executions++
	s.stats.BatchSum += len(batch)
	if s.inj != nil {
		if fail, frac := s.inj.ExecOutcome(string(fs.id)); fail {
			// The instance crashes partway through; the gateway's retry
			// policy decides each member's fate in onExecFail.
			s.schedule(&event{at: s.now + units.Seconds(dur*frac), kind: evExecFail, cid: c.id, epoch: c.batchSeq})
			return
		}
	}
	s.schedule(&event{at: s.now + units.Seconds(dur), kind: evExecDone, cid: c.id, epoch: c.batchSeq})
	if t := d.Retry.Timeout; t > 0 && dur > t {
		s.schedule(&event{at: s.now + units.Seconds(t), kind: evExecTimeout, cid: c.id, epoch: c.batchSeq})
	}
	if h := d.HedgeDelay; h > 0 && len(batch) == 1 && dur > h &&
		!batch[0].isHedge && !batch[0].hedged {
		s.schedule(&event{at: s.now + units.Seconds(h), kind: evHedge, cid: c.id, epoch: c.batchSeq})
	}
}

func (s *Simulator) onExecDone(cid int) {
	c := s.conts[cid]
	if c == nil || c.state != cBusy {
		return
	}
	batch := c.batch
	c.batch = nil
	c.state = cIdle
	fs := c.fn
	if s.rec != nil {
		s.rec.EndExec(c.id, s.now.Seconds(), false)
	}

	// Complete each node invocation and release successors. A member whose
	// request already failed, or whose node a hedge twin finished first, is
	// discarded (first completion wins).
	g := s.cfg.App.Graph
	counted := false
	for _, ni := range batch {
		inv := ni.inv
		if inv.failed || inv.done[ni.node] {
			ni.span.Finish(s.now.Seconds(), false)
			continue
		}
		ni.span.Finish(s.now.Seconds(), true)
		if ni.isHedge {
			s.stats.HedgesWon++
		}
		if !counted {
			fs.successes++
			counted = true
		}
		inv.done[ni.node] = true
		inv.remaining--
		invariant(inv.remaining >= 0, "request %d finished more members than its DAG has: remaining %d", inv.id, inv.remaining)
		for _, succ := range g.Successors(ni.node) {
			inv.pending[succ]--
			invariant(inv.pending[succ] >= 0, "request %d released successor %s more times than it has predecessors", inv.id, succ)
			if inv.pending[succ] == 0 {
				s.enqueue(&nodeInv{inv: inv, node: succ, readyAt: s.now})
			}
		}
		if inv.remaining == 0 {
			s.completeInvocation(inv)
		}
	}

	// More queued work? Keep the instance busy.
	if len(fs.queue) > 0 {
		s.startBatch(c, tracing.PhaseBatchWait)
		return
	}
	// Apply the cold-start policy.
	switch fs.directive.Policy {
	case coldstart.Prewarm, coldstart.NoMitigation:
		s.terminate(c)
	case coldstart.KeepAlive:
		s.armIdleTimer(c)
	case coldstart.AlwaysOn:
		// Stays resident; no timer.
	}
}

// --- Failure handling ---------------------------------------------------

// abortBatch terminates a container whose batch crashed, timed out or was
// evicted, then routes each in-flight member through the retry policy.
func (s *Simulator) abortBatch(c *container) {
	members := c.batch
	c.batch = nil
	fs := c.fn
	for _, ni := range members {
		ni.span.Fail(s.now.Seconds())
	}
	s.terminate(c)
	for _, ni := range members {
		s.retryMember(fs, ni)
	}
	s.pump(fs)
}

// onExecFail handles an injected crash mid-execution. The container dies
// (its billed life still charged) and each batch member is individually
// retried or failed.
func (s *Simulator) onExecFail(cid, epoch int) {
	c := s.conts[cid]
	if c == nil || c.state != cBusy || c.batchSeq != epoch {
		return
	}
	s.stats.ExecFailures++
	c.fn.execFails++
	s.abortBatch(c)
}

// onExecTimeout fires when a batch outlives the gateway's per-attempt
// timeout. The hung instance is terminated — re-dispatching onto it would
// just hang again — and the members retry elsewhere.
func (s *Simulator) onExecTimeout(cid, epoch int) {
	c := s.conts[cid]
	if c == nil || c.state != cBusy || c.batchSeq != epoch {
		return
	}
	s.stats.Timeouts++
	c.fn.execFails++
	s.abortBatch(c)
}

// retryMember routes one failed batch member through the function's retry
// policy: re-enqueue after backoff while attempts remain, otherwise the
// whole request fails. Hedge twins are never retried — the primary is
// still running.
func (s *Simulator) retryMember(fs *fnState, ni *nodeInv) {
	if ni.inv.failed || ni.isHedge || ni.inv.done[ni.node] {
		return
	}
	ni.attempts++
	pol := fs.directive.Retry
	if !pol.Allow(ni.attempts) {
		s.failInvocation(ni.inv)
		return
	}
	s.stats.Retries++
	ni.hedged = false // a retried attempt may be hedged again
	var u float64
	if s.inj != nil {
		u = s.inj.Jitter()
	} else {
		u = s.rng.Float64()
	}
	delay := pol.Backoff(ni.attempts, u)
	if delay <= 0 {
		ni.readyAt = s.now
		s.enqueue(ni)
		return
	}
	ni.span.Backoff(s.now.Seconds(), s.now.Seconds()+delay)
	s.schedule(&event{at: s.now + units.Seconds(delay), kind: evRetry, ni: ni, fn: string(fs.id)})
}

// failInvocation marks a request permanently failed and purges its
// remaining members from every function queue so no further work is spent
// on it.
func (s *Simulator) failInvocation(inv *appInv) {
	if inv.failed {
		return
	}
	inv.failed = true
	s.stats.FailedInvocations++
	if s.rec != nil {
		s.rec.FailRequest(inv.id, s.now.Seconds())
	}
	for _, fs := range s.fns {
		if len(fs.queue) == 0 {
			continue
		}
		q := fs.queue[:0]
		for _, ni := range fs.queue {
			if ni.inv != inv {
				q = append(q, ni)
			}
		}
		fs.queue = q
	}
}

// onRetry re-enqueues a backed-off member once its delay elapses.
func (s *Simulator) onRetry(ni *nodeInv) {
	if ni == nil || ni.inv.failed || ni.inv.done[ni.node] {
		return
	}
	ni.readyAt = s.now
	s.enqueue(ni)
}

// onHedge duplicates a slow single-member execution onto a second warm
// instance. The first completion wins (onExecDone's done-map dedup); the
// loser's result is discarded.
func (s *Simulator) onHedge(cid, epoch int) {
	c := s.conts[cid]
	if c == nil || c.state != cBusy || c.batchSeq != epoch || len(c.batch) != 1 {
		return
	}
	primary := c.batch[0]
	if primary.inv.failed || primary.hedged || primary.isHedge || primary.inv.done[primary.node] {
		return
	}
	h := s.pickIdle(c.fn)
	if h == nil {
		return // no spare warm instance: hedging never launches cold starts
	}
	primary.hedged = true
	twin := &nodeInv{inv: primary.inv, node: primary.node, readyAt: s.now, isHedge: true}
	if s.rec != nil {
		twin.span = s.rec.BeginNode(primary.inv.id, string(primary.node), s.now.Seconds(), true)
	}
	s.stats.HedgesLaunched++
	h.assigned = append(h.assigned, twin)
	s.startBatch(h, tracing.PhaseQueue)
}

// onNodeDown begins a legacy Outage: detection is instantaneous, no new
// allocations land on the node and every container on it is evicted, its
// in-flight work retried elsewhere (charging retry attempts, as before).
func (s *Simulator) onNodeDown(n int) {
	if n < 0 || n >= s.cluster.len() || s.cluster.isDown(n) {
		return
	}
	s.cluster.setDown(n, true)
	s.stats.NodeDownEvents++
	s.evictNode(n, s.retryMember)
	s.pumpAll()
}

// onNodeUp ends a legacy Outage: the node accepts allocations again and any
// capacity-blocked launches are placed.
func (s *Simulator) onNodeUp(n int) {
	if n < 0 || n >= s.cluster.len() || !s.cluster.isDown(n) {
		return
	}
	s.cluster.setDown(n, false)
	s.drainPendingLaunches()
	s.pumpAll()
}

// onPreempt withdraws a spot node: the provider reclaims the capacity, the
// node's containers are evicted, and their in-flight work fails over to
// live peers without charging retry attempts — the reclaim notice is the
// infrastructure's failure, not the attempt's.
func (s *Simulator) onPreempt(n int) {
	if n < 0 || n >= s.cluster.len() || s.cluster.isDown(n) {
		return
	}
	s.cluster.setDown(n, true)
	s.stats.Preemptions++
	before := s.stats.EvictedContainers
	s.evictNode(n, s.failoverMember)
	s.stats.PreemptedContainers += s.stats.EvictedContainers - before
	s.nodeInstant("preempt", n)
	s.pumpAll()
}

// onPreemptEnd returns reclaimed spot capacity to the pool: the node accepts
// allocations again and capacity-blocked launches place.
func (s *Simulator) onPreemptEnd(n int) {
	if n < 0 || n >= s.cluster.len() || !s.cluster.isDown(n) {
		return
	}
	s.cluster.setDown(n, false)
	s.nodeInstant("preempt_end", n)
	s.drainPendingLaunches()
	s.pumpAll()
}

// evictNode terminates every container on node n (id order for
// determinism) and routes each in-flight batch member through route
// (retryMember for legacy outages, failoverMember for detected crashes).
// Assigned-but-unstarted members requeue via terminate.
func (s *Simulator) evictNode(n int, route func(*fnState, *nodeInv)) {
	ids := make([]int, 0, len(s.conts))
	for id, c := range s.conts {
		if c.node == n && c.state != cDead {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := s.conts[id]
		if c == nil || c.state == cDead {
			continue
		}
		s.stats.EvictedContainers++
		members := c.batch
		c.batch = nil
		fs := c.fn
		for _, ni := range members {
			ni.span.Fail(s.now.Seconds())
		}
		s.terminate(c)
		for _, ni := range members {
			route(fs, ni)
		}
	}
}

// pumpAll re-dispatches queued work in graph order for determinism.
func (s *Simulator) pumpAll() {
	for _, id := range s.cfg.App.Graph.Nodes() {
		if fs := s.fns[id]; len(fs.queue) > 0 {
			s.pump(fs)
		}
	}
}

// nodeInstant records a node-lifecycle marker when tracing is attached.
func (s *Simulator) nodeInstant(name string, n int) {
	if s.rec != nil {
		s.rec.AddInstant(s.now.Seconds(), name, []tracing.KV{{Key: "node", Val: fmt.Sprint(n)}})
	}
}

// onNodeCrash kills a node's process — ground truth only. Its containers
// stay registered and the control plane keeps routing to them; their
// node-side completions are dropped until the gossip detector marks the
// node down and fails the in-flight work over.
func (s *Simulator) onNodeCrash(n int) {
	node := s.cluster.nodes[n]
	if !node.alive {
		return
	}
	node.alive = false
	s.nodeInstant("node_crash", n)
}

// onNodeRestart brings a crashed node back, empty. Containers the control
// plane still believes live on it died with the process: they are evicted
// and their in-flight work fails over — whether or not the detector had
// noticed the crash, a fast flap must not lose requests. Health recovery
// (allocations resuming) waits for the next gossip tick to observe the
// resumed heartbeats.
func (s *Simulator) onNodeRestart(n int) {
	node := s.cluster.nodes[n]
	if node.alive {
		return
	}
	s.evictNode(n, s.failoverMember)
	node.alive = true
	s.nodeInstant("node_restart", n)
	s.pumpAll()
}

// onPartitionStart makes a node unreachable: its containers keep running
// but their completions are held until the partition heals.
func (s *Simulator) onPartitionStart(n int) {
	node := s.cluster.nodes[n]
	if node.partitioned || !node.alive {
		return
	}
	node.partitioned = true
	s.nodeInstant("partition_start", n)
}

// onPartitionEnd heals a partition: held node-side events replay in their
// original order at heal time, racing any failed-over twins through the
// idempotent first-completion-wins dedup — no request completes twice.
func (s *Simulator) onPartitionEnd(n int) {
	node := s.cluster.nodes[n]
	if !node.partitioned {
		return
	}
	node.partitioned = false
	held := node.held
	node.held = nil
	s.nodeInstant("partition_heal", n)
	for _, he := range held {
		s.dispatch(he)
	}
}

// onGossip is one deterministic failure-detector tick: reachable nodes
// heartbeat, unreachable ones age toward suspect and down, and nodes whose
// heartbeats resumed recover. Nodes are visited in index order so detector
// side effects (evictions, failovers, pumps) are reproducible.
func (s *Simulator) onGossip() {
	now := s.now.Seconds()
	for i, n := range s.cluster.nodes {
		if n.alive && !n.partitioned {
			n.lastBeat = now
			// Only reverse the detector's own verdicts: a node a legacy
			// Outage holds down stays down until its scheduled evNodeUp.
			if n.health == nodeSuspect || (n.health == nodeDown && n.detectorDown) {
				s.recoverNode(i)
			}
			continue
		}
		gap := now - n.lastBeat
		if n.health == nodeUp && gap >= s.cfg.SuspectAfter {
			n.health = nodeSuspect
			s.nodeInstant("node_suspect", i)
		}
		if n.health != nodeDown && gap >= s.cfg.DownAfter {
			s.markNodeDown(i)
		}
	}
	if s.now < s.horizon {
		s.schedule(&event{at: s.now + units.Seconds(s.cfg.GossipInterval), kind: evGossip})
	}
}

// recoverNode returns a node to service once its heartbeats resume: down
// time settles into NodeDownSeconds, capacity-blocked launches place, and
// queued work re-pumps.
func (s *Simulator) recoverNode(i int) {
	n := s.cluster.nodes[i]
	if n.health == nodeDown {
		s.stats.NodeDownSeconds += s.now.Seconds() - n.downSince
	}
	n.health = nodeUp
	n.detectorDown = false
	s.nodeInstant("node_recovered", i)
	s.drainPendingLaunches()
	s.pumpAll()
}

// markNodeDown commits the detector's verdict: the node leaves the
// placement pool and every in-flight request bound to it fails over to a
// live peer. A crashed node's containers are evicted (they died with the
// process); a partitioned node's keep running — their eventual completions
// race the failover twins, and the done-map dedup keeps exactly one.
func (s *Simulator) markNodeDown(i int) {
	n := s.cluster.nodes[i]
	n.health = nodeDown
	n.detectorDown = true
	n.downSince = s.now.Seconds()
	s.stats.NodeDownEvents++
	s.nodeInstant("node_down", i)
	if !n.alive {
		s.evictNode(i, s.failoverMember)
	} else if n.partitioned {
		s.twinNodeInflight(i)
	}
	s.pumpAll()
}

// twinNodeInflight duplicates every in-flight member on node i onto a live
// peer. The originals keep executing behind the partition; twin and
// original race, first completion wins.
func (s *Simulator) twinNodeInflight(i int) {
	ids := make([]int, 0, len(s.conts))
	for id, c := range s.conts {
		if c.node == i && c.state != cDead {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := s.conts[id]
		members := append(append([]*nodeInv(nil), c.batch...), c.assigned...)
		for _, ni := range members {
			if ni.inv.failed || ni.inv.done[ni.node] || ni.isHedge {
				continue
			}
			twin := &nodeInv{inv: ni.inv, node: ni.node, readyAt: s.now}
			s.failoverMember(c.fn, twin)
		}
	}
}

// failoverMember re-forwards one in-flight member to a live peer. Unlike
// retryMember it charges no retry attempt and applies no backoff: the
// failure is the infrastructure's, not the attempt's, and the detection
// delay already cost latency. The deadline/retry budgets still bound total
// work — a member that keeps landing on dying nodes keeps its attempt
// count, so its next genuine failure routes through the retry policy.
func (s *Simulator) failoverMember(fs *fnState, ni *nodeInv) {
	if ni.inv.failed || ni.inv.done[ni.node] || ni.isHedge {
		return
	}
	s.stats.Failovers++
	ni.hedged = false
	ni.readyAt = s.now
	s.enqueue(ni)
}

func (s *Simulator) armIdleTimer(c *container) {
	d := c.fn.directive
	if d.Policy == coldstart.AlwaysOn {
		return
	}
	ka := d.KeepAlive
	if ka <= 0 {
		// Grace period for drivers that leave KeepAlive unset: long
		// enough that a pre-warmed instance arriving slightly early is
		// not reaped before its request.
		ka = 10 * s.cfg.Window
	}
	c.idleEpoch++
	s.schedule(&event{at: s.now + units.Seconds(ka), kind: evIdleTimeout, cid: c.id, epoch: c.idleEpoch})
}

func (s *Simulator) onIdleTimeout(cid, epoch int) {
	c := s.conts[cid]
	if c == nil || c.state != cIdle || c.idleEpoch != epoch {
		return
	}
	if c.fn.liveCount() <= c.fn.directive.MinWarm {
		s.armIdleTimer(c) // floor reached: stay resident, check again later
		return
	}
	s.terminate(c)
}

func (s *Simulator) terminate(c *container) {
	if c.state == cDead {
		return
	}
	if s.rec != nil {
		s.rec.ContainerGone(c.id, s.now.Seconds())
	}
	// Requeue any assigned-but-unstarted work.
	if len(c.assigned) > 0 {
		c.fn.queue = append(c.assigned, c.fn.queue...)
		c.assigned = nil
	}
	c.state = cDead
	if c.node >= 0 {
		s.cluster.release(c.node, c.cfg)
		s.drainPendingLaunches()
	} else {
		// Never placed: remove from the pending queue.
		for i, p := range s.pendingLaunch {
			if p.id == c.id {
				s.pendingLaunch = append(s.pendingLaunch[:i], s.pendingLaunch[i+1:]...)
				break
			}
		}
	}
	life, cost := s.billedLife(c)
	s.stats.addCost(string(c.fn.id), c.cfg, life, cost)
	delete(c.fn.containers, c.id)
	delete(s.conts, c.id)
}

// billedLife returns a container's billed lifetime in seconds and its
// dollar cost from initialization start to now: static pricing by default,
// or the spot trace's multiplier-weighted integral when one is configured.
// FlatTrace(1) integrates to exactly the raw lifetime, so its bills are
// bit-identical to static pricing.
func (s *Simulator) billedLife(c *container) (life, cost float64) {
	life = (s.now - c.initStart).Seconds()
	unit := s.cfg.Pricing.UnitCost(c.cfg)
	if pt := s.cfg.PriceTrace; pt != nil {
		return life, unit * pt.Integrate(c.initStart.Seconds(), s.now.Seconds())
	}
	return life, life * unit
}

// drainPendingLaunches starts queued launches that now fit.
func (s *Simulator) drainPendingLaunches() {
	remaining := s.pendingLaunch[:0]
	for _, c := range s.pendingLaunch {
		if c.state != cInitializing {
			continue
		}
		node, ok := s.placeLaunch(c.fn.id, c.cfg)
		if !ok {
			remaining = append(remaining, c)
			continue
		}
		c.node = node
		s.beginInit(c)
	}
	s.pendingLaunch = remaining
	// Placed launches can now accept queued work once warm; nothing to do
	// here — onInitDone pumps.
}

func (s *Simulator) completeInvocation(inv *appInv) {
	invariant(inv.remaining == 0 && !inv.failed, "request %d completed with remaining=%d failed=%t: done-map dedup broke", inv.id, inv.remaining, inv.failed)
	e2e := (s.now - inv.arrival).Seconds()
	s.stats.Completed++
	var bd tracing.Breakdown
	if s.rec != nil {
		bd = s.rec.CompleteRequest(inv.id, s.now.Seconds())
	}
	if inv.arrival.Seconds() < s.cfg.StatsAfter {
		return // measurement warm-up: not part of the reported statistics
	}
	s.stats.E2E = append(s.stats.E2E, e2e)
	s.stats.E2EArrival = append(s.stats.E2EArrival, inv.arrival.Seconds())
	if e2e > s.cfg.SLA {
		s.stats.Violations++
		if s.rec != nil && bd.Blamed != "" {
			if s.stats.ViolationByFn == nil {
				s.stats.ViolationByFn = make(map[string]int)
			}
			s.stats.ViolationByFn[bd.Blamed]++
		}
	}
	if s.rec != nil {
		s.stats.QueueOnPathSeconds += bd.Phases[tracing.PhaseQueue] + bd.Phases[tracing.PhaseBatchWait]
		s.stats.InitOnPathSeconds += bd.Phases[tracing.PhaseColdInit]
		s.stats.ExecOnPathSeconds += bd.Phases[tracing.PhaseExec]
		s.stats.RetryOnPathSeconds += bd.Phases[tracing.PhaseFailedAttempt] + bd.Phases[tracing.PhaseBackoff]
	}
}

func (s *Simulator) onPrewarm(id dag.NodeID) {
	fs := s.fns[id]
	// An idle or initializing instance already satisfies the pre-warm
	// goal. A busy instance does too unless the policy terminates it
	// after its current batch (Prewarm/NoMitigation), in which case it
	// will not be available for the next request.
	terminating := fs.directive.Policy == coldstart.Prewarm || fs.directive.Policy == coldstart.NoMitigation
	for _, c := range fs.containers {
		switch c.state {
		case cIdle, cInitializing:
			return
		case cBusy:
			if !terminating {
				return
			}
		}
	}
	if fs.liveCount() >= fs.directive.Instances {
		return
	}
	s.launch(fs, fs.directive.Config, true)
}

// samplePods records pod-count and backend-usage series each window.
func (s *Simulator) samplePods() {
	cpuPods, gpuPods := 0, 0
	for _, c := range s.conts {
		if c.state == cDead {
			continue
		}
		if c.cfg.Kind == hardware.CPU {
			cpuPods++
		} else {
			gpuPods++
		}
	}
	s.stats.PodSamples = append(s.stats.PodSamples, PodSample{
		Time: s.now.Seconds(), CPU: cpuPods, GPU: gpuPods,
		Arrivals: s.lastWindowCount(),
	})
}

func (s *Simulator) lastWindowCount() int {
	if len(s.counts) == 0 {
		return 0
	}
	return s.counts[len(s.counts)-1]
}

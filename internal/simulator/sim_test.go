package simulator

import (
	"math"
	"testing"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/dag"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
	"smiless/internal/trace"
)

func cpu(cores int) hardware.Config { return hardware.Config{Kind: hardware.CPU, Cores: cores} }
func gpu(share int) hardware.Config { return hardware.Config{Kind: hardware.GPU, GPUShare: share} }

// staticDriver installs one directive for every function and never changes.
type staticDriver struct {
	directive func(id dag.NodeID) Directive
}

func (d *staticDriver) Name() string { return "static" }
func (d *staticDriver) Setup(s ControlPlane) {
	for _, id := range s.App().Graph.Nodes() {
		s.SetDirective(id, d.directive(id))
	}
}
func (d *staticDriver) OnWindow(ControlPlane, float64) {}

func keepAliveDriver(cfg hardware.Config, ka float64) *staticDriver {
	return &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{Config: cfg, Policy: coldstart.KeepAlive, KeepAlive: ka, Batch: 1, Instances: 4}
	}}
}

func runPipeline(t *testing.T, d Driver, tr *trace.Trace, sla float64) *RunStats {
	t.Helper()
	app := apps.Pipeline(3)
	sim := MustNew(Config{App: app, SLA: sla, Seed: 1}, d)
	return sim.MustRun(tr)
}

func TestAllRequestsComplete(t *testing.T) {
	tr := &trace.Trace{Horizon: 100, Arrivals: []float64{1, 20, 40, 60}}
	st := runPipeline(t, keepAliveDriver(cpu(4), 30), tr, 30)
	if st.Completed != 4 {
		t.Fatalf("completed = %d, want 4", st.Completed)
	}
	if len(st.E2E) != 4 {
		t.Fatalf("E2E samples = %d, want 4", len(st.E2E))
	}
}

func TestColdThenWarm(t *testing.T) {
	// First request pays the cold start; the second (within keep-alive)
	// runs warm and is much faster.
	tr := &trace.Trace{Horizon: 60, Arrivals: []float64{1, 10}}
	st := runPipeline(t, keepAliveDriver(cpu(4), 30), tr, 60)
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
	if st.E2E[1] >= st.E2E[0]/1.5 {
		t.Errorf("warm E2E %v should be well below cold E2E %v", st.E2E[1], st.E2E[0])
	}
	// Exactly one init per function (3 total).
	if st.Inits != 3 {
		t.Errorf("inits = %d, want 3", st.Inits)
	}
}

func TestKeepAliveExpires(t *testing.T) {
	// Two requests far apart with a short keep-alive: every function
	// re-initializes, so 6 inits total.
	tr := &trace.Trace{Horizon: 200, Arrivals: []float64{1, 150}}
	st := runPipeline(t, keepAliveDriver(cpu(4), 5), tr, 60)
	if st.Inits != 6 {
		t.Errorf("inits = %d, want 6 (keep-alive expired)", st.Inits)
	}
}

func TestCostIncreasesWithKeepAlive(t *testing.T) {
	tr := &trace.Trace{Horizon: 120, Arrivals: []float64{1}}
	short := runPipeline(t, keepAliveDriver(cpu(4), 2), tr, 60)
	long := runPipeline(t, keepAliveDriver(cpu(4), 100), tr, 60)
	if long.TotalCost <= short.TotalCost {
		t.Errorf("long keep-alive cost %v should exceed short %v", long.TotalCost, short.TotalCost)
	}
}

func TestGPUCostsMoreForIdle(t *testing.T) {
	tr := &trace.Trace{Horizon: 120, Arrivals: []float64{1}}
	cpuRun := runPipeline(t, keepAliveDriver(cpu(1), 60), tr, 120)
	gpuRun := runPipeline(t, keepAliveDriver(gpu(100), 60), tr, 120)
	if gpuRun.TotalCost <= cpuRun.TotalCost {
		t.Errorf("idle GPU cost %v should exceed idle CPU cost %v", gpuRun.TotalCost, cpuRun.TotalCost)
	}
	if gpuRun.GPUSeconds == 0 || gpuRun.CPUSeconds != 0 {
		t.Error("backend second accounting wrong")
	}
}

func TestPrewarmPolicyTerminatesAfterUse(t *testing.T) {
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{Config: cpu(4), Policy: coldstart.Prewarm, Batch: 1, Instances: 2}
	}}
	tr := &trace.Trace{Horizon: 100, Arrivals: []float64{1, 50}}
	st := runPipeline(t, d, tr, 60)
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
	// Containers die after each batch: 2 requests × 3 functions = 6 inits.
	if st.Inits != 6 {
		t.Errorf("inits = %d, want 6 under terminate-after-use", st.Inits)
	}
}

// prewarmDriver schedules proactive pre-warms for the known arrival times.
type prewarmDriver struct {
	arrivals []float64
	offsets  map[dag.NodeID]float64
	leads    map[dag.NodeID]float64
}

func (d *prewarmDriver) Name() string { return "oracle-prewarm" }
func (d *prewarmDriver) Setup(s ControlPlane) {
	profiles := s.App().TrueProfiles(3)
	d.offsets = map[dag.NodeID]float64{}
	d.leads = map[dag.NodeID]float64{}
	off := 0.0
	for _, id := range s.App().Graph.TopoSort() {
		cfg := cpu(4)
		d.offsets[id] = off
		d.leads[id] = profiles[id].InitTime(cfg)
		off += profiles[id].InferenceTime(cfg, 1)
		s.SetDirective(id, Directive{
			Config: cfg, Policy: coldstart.Prewarm,
			PrewarmLead: d.leads[id], PathOffset: d.offsets[id],
			KeepAlive: 30, Batch: 1, Instances: 2,
		})
	}
	for _, at := range d.arrivals {
		for _, id := range s.App().Graph.Nodes() {
			s.SchedulePrewarm(id, at+d.offsets[id])
		}
	}
}
func (d *prewarmDriver) OnWindow(ControlPlane, float64) {}

func TestOraclePrewarmHidesInit(t *testing.T) {
	// With perfect pre-warming, E2E is close to the sum of inference
	// times: initialization is off the critical path (Eq. 5).
	app := apps.Pipeline(3)
	arr := []float64{30, 90}
	tr := &trace.Trace{Horizon: 150, Arrivals: arr}
	sim := MustNew(Config{App: app, SLA: 30, Seed: 2}, &prewarmDriver{arrivals: arr})
	st := sim.MustRun(tr)
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
	profiles := app.TrueProfiles(3)
	wantSum := 0.0
	for _, id := range app.Graph.Nodes() {
		wantSum += profiles[id].InferenceTime(cpu(4), 1)
	}
	for i, e2e := range st.E2E {
		// Allow noise slack but require the ~2s init times to be hidden.
		if e2e > wantSum*1.5 {
			t.Errorf("request %d E2E %v: initialization not hidden (inference sum %v)", i, e2e, wantSum)
		}
	}
}

func TestBatchingReducesExecutions(t *testing.T) {
	// 8 simultaneous arrivals with batch 8 should execute far fewer
	// batches than with batch 1.
	mk := func(batch int) *RunStats {
		d := &staticDriver{directive: func(dag.NodeID) Directive {
			return Directive{Config: gpu(100), Policy: coldstart.KeepAlive, KeepAlive: 30, Batch: batch, Instances: 1}
		}}
		arr := make([]float64, 8)
		for i := range arr {
			arr[i] = 1.0 + float64(i)*0.001
		}
		tr := &trace.Trace{Horizon: 120, Arrivals: arr}
		return runPipeline(t, d, tr, 120)
	}
	b1 := mk(1)
	b8 := mk(8)
	if b1.Completed != 8 || b8.Completed != 8 {
		t.Fatalf("completed %d/%d, want 8/8", b1.Completed, b8.Completed)
	}
	if b8.Executions >= b1.Executions {
		t.Errorf("batched executions %d should be far below unbatched %d", b8.Executions, b1.Executions)
	}
	if b8.MeanBatch() <= 2 {
		t.Errorf("mean batch %v, want > 2", b8.MeanBatch())
	}
}

func TestScaleOutCapRespected(t *testing.T) {
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{Config: cpu(1), Policy: coldstart.KeepAlive, KeepAlive: 10, Batch: 1, Instances: 2}
	}}
	arr := make([]float64, 10)
	for i := range arr {
		arr[i] = 1
	}
	app := apps.Pipeline(1)
	sim := MustNew(Config{App: app, SLA: 300, Seed: 3}, d)
	st := sim.MustRun(&trace.Trace{Horizon: 300, Arrivals: arr})
	if st.Completed != 10 {
		t.Fatalf("completed = %d, want 10", st.Completed)
	}
	// At most 2 instances => at most 2 inits for the single function.
	if st.Inits > 2 {
		t.Errorf("inits = %d, want <= 2 (instance cap)", st.Inits)
	}
	// Pod samples never exceed the cap.
	for _, p := range st.PodSamples {
		if p.CPU > 2 {
			t.Errorf("pod sample %d exceeds instance cap", p.CPU)
		}
	}
}

func TestDAGOrderingRespected(t *testing.T) {
	// In a diamond DAG the join function must run after both branches:
	// E2E >= longest path of inference times even fully warm.
	app := apps.ImageQuery()
	d := keepAliveDriver(cpu(4), 120)
	sim := MustNew(Config{App: app, SLA: 120, Seed: 4}, d)
	st := sim.MustRun(&trace.Trace{Horizon: 200, Arrivals: []float64{1, 60}})
	if st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
	profiles := app.TrueProfiles(0)
	warmPath := 0.0
	for _, p := range app.Graph.Paths() {
		sum := 0.0
		for _, id := range p {
			sum += profiles[id].InferenceTime(cpu(4), 1)
		}
		if sum > warmPath {
			warmPath = sum
		}
	}
	// The second (warm) request must take at least ~the critical path.
	if st.E2E[1] < warmPath*0.5 {
		t.Errorf("warm E2E %v is below half the critical path %v: DAG ordering broken", st.E2E[1], warmPath)
	}
}

func TestCapacityLimitBlocksLaunches(t *testing.T) {
	// A one-node cluster with 4 cores cannot host 4 parallel 2-core
	// containers: capacity blocking must engage.
	d := &staticDriver{directive: func(dag.NodeID) Directive {
		return Directive{Config: cpu(2), Policy: coldstart.KeepAlive, KeepAlive: 5, Batch: 1, Instances: 8}
	}}
	app := apps.Pipeline(1)
	cluster := hardware.ClusterSpec{Nodes: []hardware.NodeSpec{{Cores: 4, GPUs: 0}}}
	arr := make([]float64, 8)
	for i := range arr {
		arr[i] = 1
	}
	sim := MustNew(Config{App: app, Cluster: cluster, SLA: 600, Seed: 5}, d)
	st := sim.MustRun(&trace.Trace{Horizon: 600, Arrivals: arr})
	if st.Completed != 8 {
		t.Fatalf("completed = %d, want 8 (queued launches must drain)", st.Completed)
	}
	if st.CapacityBlocked == 0 {
		t.Error("expected capacity-blocked launches on a 4-core cluster")
	}
}

func TestViolationAccounting(t *testing.T) {
	// Impossible SLA: every request violates.
	tr := &trace.Trace{Horizon: 60, Arrivals: []float64{1, 10}}
	st := runPipeline(t, keepAliveDriver(cpu(1), 30), tr, 0.001)
	if st.Violations != st.Completed {
		t.Errorf("violations = %d, want %d", st.Violations, st.Completed)
	}
	if st.ViolationRate() != 1 {
		t.Errorf("violation rate = %v, want 1", st.ViolationRate())
	}
}

func TestDeterminism(t *testing.T) {
	r1 := runPipeline(t, keepAliveDriver(cpu(4), 20), trace.Poisson(mathx.NewRand(7), 0.2, 120), 10)
	r2 := runPipeline(t, keepAliveDriver(cpu(4), 20), trace.Poisson(mathx.NewRand(7), 0.2, 120), 10)
	if r1.TotalCost != r2.TotalCost || r1.Completed != r2.Completed || r1.Inits != r2.Inits {
		t.Errorf("same seed must give identical runs: cost %v vs %v, completed %d vs %d, inits %d vs %d",
			r1.TotalCost, r2.TotalCost, r1.Completed, r2.Completed, r1.Inits, r2.Inits)
	}
	if len(r1.E2E) != len(r2.E2E) {
		t.Fatal("E2E length mismatch")
	}
	for i := range r1.E2E {
		if r1.E2E[i] != r2.E2E[i] {
			t.Fatalf("E2E[%d] differs: %v vs %v", i, r1.E2E[i], r2.E2E[i])
		}
	}
}

func TestStatsSummaryRenders(t *testing.T) {
	tr := &trace.Trace{Horizon: 30, Arrivals: []float64{1}}
	st := runPipeline(t, keepAliveDriver(cpu(4), 5), tr, 10)
	s := st.Summary()
	if len(s) == 0 || math.IsNaN(st.TotalCost) {
		t.Error("summary empty or NaN cost")
	}
	if got := st.TopCostFunctions(); len(got) == 0 {
		t.Error("no cost attribution")
	}
}

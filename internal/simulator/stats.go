package simulator

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"smiless/internal/forecast"
	"smiless/internal/hardware"
	"smiless/internal/mathx"
)

// PodSample is one per-window snapshot of live pods and arrivals, used by
// the burst-adaptation experiment (Fig. 14).
type PodSample struct {
	Time     float64
	CPU, GPU int
	Arrivals int
}

// RunStats aggregates everything the paper's figures report about a run.
type RunStats struct {
	SLA float64

	// Cost accounting (dollars).
	TotalCost  float64
	CostPerFn  map[string]float64
	CPUSeconds float64 // billed CPU-container seconds
	GPUSeconds float64 // billed GPU-container seconds
	CPUCost    float64
	GPUCost    float64

	// Latency.
	E2E []float64
	// E2EArrival[i] is the arrival time of the request behind E2E[i].
	E2EArrival []float64
	Completed  int
	Violations int

	// Container lifecycle.
	Inits int // container initializations (Fig. 9b numerator)
	// WarmStarts counts initializations that ran to completion — containers
	// that became warm — NOT dispatches served by an already-warm instance.
	// For warm-hit accounting subtract InitGated from Executions instead.
	WarmStarts      int
	Executions      int // batches run
	BatchSum        int // total invocations across batches
	InitGated       int // batches whose start waited on initialization
	CapacityBlocked int // launches delayed by cluster capacity

	// Critical-path attribution (zero unless a tracing recorder was
	// attached). Each completed measured request's end-to-end latency is
	// decomposed along its critical path; these accumulate the per-phase
	// seconds across requests. Queue includes batch wait; Retry includes
	// failed attempts and backoff.
	QueueOnPathSeconds float64
	InitOnPathSeconds  float64
	ExecOnPathSeconds  float64
	RetryOnPathSeconds float64
	// ViolationByFn attributes each measured SLA violation to the function
	// the critical-path pass blamed. Nil unless traced.
	ViolationByFn map[string]int

	// Resilience (all zero on fault-free runs).
	InitFailures      int // injected crashes during initialization
	ExecFailures      int // injected crashes during execution
	Timeouts          int // gateway per-attempt timeouts fired
	Stragglers        int // executions inflated by straggler injection
	Retries           int // member re-dispatches after a failure
	HedgesLaunched    int // duplicate executions started
	HedgesWon         int // hedge twins that finished before the primary
	FailedInvocations int // requests lost after exhausting retries
	NodeDownEvents    int // node outages begun (scheduled or detector-declared)
	EvictedContainers int // containers killed by node outages
	BreakerTrips      int // circuit-breaker openings (driver-reported)
	DegradedWindows   int // windows served on the degraded fallback plan

	// Forecasting quality (populated only when the driver runs a trained
	// forecaster; ForecastName == "" means no forecast accounting and keeps
	// legacy summaries byte-identical). The reports carry per-horizon
	// MAE/sMAPE, the upper-bound violation rate, and refit/drift counts for
	// each Online Predictor role.
	ForecastName  string
	ForecastIT    forecast.QualityReport
	ForecastCount forecast.QualityReport

	// Heterogeneous placement and spot pricing (all zero unless an
	// interference model or a price trace with preemption windows is
	// configured).
	InterferedInits     int     // initializations slowed by co-location interference
	InterferedBatches   int     // executions slowed by co-location interference
	InterferenceSeconds float64 // extra runtime attributable to interference
	Preemptions         int     // spot preemption windows that withdrew a node
	PreemptedContainers int     // containers evicted by spot preemptions

	// Multi-node control plane (all zero on single-node / first-fit runs).
	Forwards         int     // launches placed off the locality home node (p2c overflow)
	Failovers        int     // in-flight members re-forwarded off a dead or partitioned node
	NodeDownSeconds  float64 // cumulative detector-declared down time across nodes
	DeadlineExceeded int     // requests failed by their per-request deadline
	Abandoned        int     // requests whose caller went away before resolution

	PodSamples []PodSample
}

// NewRunStats returns empty statistics for a run with the given SLA. The
// simulator builds its own; the serving runtime (internal/serving) shares the
// type so live runs report through the identical schema.
func NewRunStats(sla float64) *RunStats {
	return &RunStats{SLA: sla, CostPerFn: make(map[string]float64)}
}

func newRunStats(sla float64) *RunStats { return NewRunStats(sla) }

// AddCost accrues one terminated container's billed life against the run
// totals and the per-function ledger.
func (r *RunStats) AddCost(fn string, cfg hardware.Config, life, cost float64) {
	r.addCost(fn, cfg, life, cost)
}

func (r *RunStats) addCost(fn string, cfg hardware.Config, life, cost float64) {
	r.TotalCost += cost
	r.CostPerFn[fn] += cost
	if cfg.Kind == hardware.CPU {
		r.CPUSeconds += life
		r.CPUCost += cost
	} else {
		r.GPUSeconds += life
		r.GPUCost += cost
	}
}

// ViolationRate returns the fraction of measured requests exceeding the
// SLA (requests arriving during the warm-up window are not measured).
func (r *RunStats) ViolationRate() float64 {
	if len(r.E2E) == 0 {
		return 0
	}
	return float64(r.Violations) / float64(len(r.E2E))
}

// ReinitFraction returns container initializations per completed request,
// the Fig. 9(b) metric.
func (r *RunStats) ReinitFraction() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.Inits) / float64(r.Completed)
}

// CPUGPURatio returns billed CPU seconds over billed GPU seconds (Fig. 9a);
// +Inf when no GPU time was billed.
func (r *RunStats) CPUGPURatio() float64 {
	if r.GPUSeconds <= 0 {
		if r.CPUSeconds <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return r.CPUSeconds / r.GPUSeconds
}

// MeanBatch returns the average realized batch size.
func (r *RunStats) MeanBatch() float64 {
	if r.Executions == 0 {
		return 0
	}
	return float64(r.BatchSum) / float64(r.Executions)
}

// LatencyPercentile returns the p-th percentile of E2E latency.
func (r *RunStats) LatencyPercentile(p float64) float64 {
	return mathx.Percentile(r.E2E, p)
}

// Availability returns the fraction of requests that completed out of all
// that resolved (completed + failed); 1 when nothing failed.
func (r *RunStats) Availability() float64 {
	total := r.Completed + r.FailedInvocations
	if total == 0 {
		return 1
	}
	return float64(r.Completed) / float64(total)
}

// resilienceActive reports whether any fault/recovery counter is non-zero;
// fault-free summaries omit the resilience segment so their output is
// byte-identical to pre-fault builds.
func (r *RunStats) resilienceActive() bool {
	return r.InitFailures > 0 || r.ExecFailures > 0 || r.Timeouts > 0 ||
		r.Stragglers > 0 || r.Retries > 0 || r.HedgesLaunched > 0 ||
		r.FailedInvocations > 0 || r.NodeDownEvents > 0 ||
		r.BreakerTrips > 0 || r.DegradedWindows > 0 ||
		r.Forwards > 0 || r.Failovers > 0 || r.NodeDownSeconds > 0 ||
		r.DeadlineExceeded > 0 || r.Abandoned > 0
}

// placementActive reports whether the heterogeneous-placement subsystem
// left any trace on the run; summaries of runs with it disabled omit the
// placement segment so their output stays byte-identical.
func (r *RunStats) placementActive() bool {
	return r.InterferedInits > 0 || r.InterferedBatches > 0 ||
		r.InterferenceSeconds > 0 || r.Preemptions > 0 || r.PreemptedContainers > 0
}

// Summary renders a human-readable digest for CLI output.
func (r *RunStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%d cost=$%.4f violations=%.1f%% ", r.Completed, r.TotalCost, r.ViolationRate()*100)
	fmt.Fprintf(&b, "p50=%.2fs p95=%.2fs p99=%.2fs ", r.LatencyPercentile(50), r.LatencyPercentile(95), r.LatencyPercentile(99))
	fmt.Fprintf(&b, "inits=%d reinit/req=%.2f cpu:gpu=%.2f meanBatch=%.2f", r.Inits, r.ReinitFraction(), r.CPUGPURatio(), r.MeanBatch())
	if r.ForecastName != "" {
		fmt.Fprintf(&b, "\nforecaster=%s it[%s] count[%s]",
			r.ForecastName, r.ForecastIT, r.ForecastCount)
	}
	if r.resilienceActive() {
		fmt.Fprintf(&b, "\navailability=%.2f%% failed=%d retries=%d timeouts=%d ",
			r.Availability()*100, r.FailedInvocations, r.Retries, r.Timeouts)
		fmt.Fprintf(&b, "crashes=%d/%d stragglers=%d hedges=%d/%d evicted=%d trips=%d degraded=%d",
			r.InitFailures, r.ExecFailures, r.Stragglers, r.HedgesWon, r.HedgesLaunched,
			r.EvictedContainers, r.BreakerTrips, r.DegradedWindows)
		if r.Forwards > 0 || r.Failovers > 0 || r.NodeDownSeconds > 0 || r.DeadlineExceeded > 0 || r.Abandoned > 0 {
			fmt.Fprintf(&b, "\nforwards=%d failovers=%d nodeDown=%.2fs deadlineExceeded=%d abandoned=%d",
				r.Forwards, r.Failovers, r.NodeDownSeconds, r.DeadlineExceeded, r.Abandoned)
		}
	}
	if r.placementActive() {
		fmt.Fprintf(&b, "\ninterfered=%d/%d interferenceExtra=%.2fs preemptions=%d preempted=%d",
			r.InterferedInits, r.InterferedBatches, r.InterferenceSeconds,
			r.Preemptions, r.PreemptedContainers)
	}
	return b.String()
}

// TopCostFunctions returns function names ordered by descending cost.
func (r *RunStats) TopCostFunctions() []string {
	names := make([]string, 0, len(r.CostPerFn))
	for n := range r.CostPerFn {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if r.CostPerFn[names[i]] != r.CostPerFn[names[j]] { //lint:allow floateq comparator tie-break: exact equality decides when the name ordering applies
			return r.CostPerFn[names[i]] > r.CostPerFn[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

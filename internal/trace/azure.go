package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
)

// The Azure Functions 2019 dataset (Shahrad et al., ATC'20) ships as CSV
// files with one row per function and one column per minute of the day:
//
//	HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
//
// This file implements a loader for that format plus the paper's scale-down
// (§VII-A: one trace minute becomes two seconds), so anyone holding the
// dataset can drive the evaluation with real invocation patterns, and a
// writer that exports synthetic traces in the same format.

// AzureRow is one function's daily invocation-count series.
type AzureRow struct {
	Owner, App, Function, Trigger string
	// Counts holds invocations per minute (typically 1440 entries).
	Counts []int
}

// Total returns the row's total daily invocations.
func (r *AzureRow) Total() int {
	s := 0
	for _, c := range r.Counts {
		s += c
	}
	return s
}

// ReadAzureCSV parses an Azure Functions invocations-per-minute CSV. The
// header row is required; malformed rows abort with an error naming the
// line.
func ReadAzureCSV(r io.Reader) ([]AzureRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading Azure CSV header: %w", err)
	}
	if len(header) < 5 {
		return nil, fmt.Errorf("trace: Azure CSV header has %d columns, want >= 5", len(header))
	}
	var rows []AzureRow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: Azure CSV line %d: %w", line, err)
		}
		if len(rec) < 5 {
			return nil, fmt.Errorf("trace: Azure CSV line %d has %d columns, want >= 5", line, len(rec))
		}
		row := AzureRow{Owner: rec[0], App: rec[1], Function: rec[2], Trigger: rec[3]}
		for i, cell := range rec[4:] {
			v, err := strconv.Atoi(cell)
			if err != nil {
				return nil, fmt.Errorf("trace: Azure CSV line %d minute %d: %w", line, i+1, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: Azure CSV line %d minute %d: negative count", line, i+1)
			}
			row.Counts = append(row.Counts, v)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PaperScale is the paper's scale-down: one trace minute becomes two
// seconds (§VII-A), compressing a day of Azure traffic into 48 minutes.
const PaperScale = 2.0

// FromAzureRow converts a row's per-minute counts into an arrival trace:
// each minute becomes secondsPerMinute seconds (the paper uses PaperScale),
// with that minute's invocations spread uniformly at random inside it.
func FromAzureRow(row AzureRow, secondsPerMinute float64, r *rand.Rand) *Trace {
	if secondsPerMinute <= 0 {
		panic("trace: non-positive scale")
	}
	return FromCounts(row.Counts, secondsPerMinute, r)
}

// WriteAzureCSV exports count series in the dataset's format, one row per
// series. All series must share a length.
func WriteAzureCSV(w io.Writer, rows []AzureRow) error {
	if len(rows) == 0 {
		return fmt.Errorf("trace: no rows to write")
	}
	n := len(rows[0].Counts)
	cw := csv.NewWriter(w)
	header := []string{"HashOwner", "HashApp", "HashFunction", "Trigger"}
	for i := 1; i <= n; i++ {
		header = append(header, strconv.Itoa(i))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, row := range rows {
		if len(row.Counts) != n {
			return fmt.Errorf("trace: row %d has %d minutes, want %d", i, len(row.Counts), n)
		}
		rec := []string{row.Owner, row.App, row.Function, row.Trigger}
		for _, c := range row.Counts {
			rec = append(rec, strconv.Itoa(c))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ToAzureRow converts a trace into the dataset's per-minute format using
// the same scale (each secondsPerMinute seconds of trace time becomes one
// minute column).
func ToAzureRow(t *Trace, secondsPerMinute float64, name string) AzureRow {
	if secondsPerMinute <= 0 {
		panic("trace: non-positive scale")
	}
	return AzureRow{
		Owner: "synthetic", App: "synthetic", Function: name, Trigger: "http",
		Counts: t.Counts(secondsPerMinute),
	}
}

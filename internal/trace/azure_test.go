package trace

import (
	"bytes"
	"strings"
	"testing"

	"smiless/internal/mathx"
)

const sampleCSV = `HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5
o1,a1,f1,http,0,3,1,0,2
o1,a1,f2,timer,1,1,1,1,1
`

func TestReadAzureCSV(t *testing.T) {
	rows, err := ReadAzureCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Function != "f1" || rows[0].Trigger != "http" {
		t.Errorf("row metadata wrong: %+v", rows[0])
	}
	if rows[0].Total() != 6 || rows[1].Total() != 5 {
		t.Errorf("totals = %d, %d; want 6, 5", rows[0].Total(), rows[1].Total())
	}
	if len(rows[0].Counts) != 5 {
		t.Errorf("minutes = %d, want 5", len(rows[0].Counts))
	}
}

func TestReadAzureCSVErrors(t *testing.T) {
	cases := []string{
		"",                          // no header
		"a,b\n",                     // short header
		"a,b,c,d,1\no,a,f,h\n",      // short row
		"a,b,c,d,1\no,a,f,h,nope\n", // non-integer count
		"a,b,c,d,1\no,a,f,h,-3\n",   // negative count
	}
	for i, c := range cases {
		if _, err := ReadAzureCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestFromAzureRowPaperScale(t *testing.T) {
	rows, err := ReadAzureCSV(strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(1)
	tr := FromAzureRow(rows[0], PaperScale, r)
	// 5 minutes at 2 s each -> 10 s horizon, 6 arrivals.
	if tr.Horizon != 10 {
		t.Errorf("horizon = %v, want 10", tr.Horizon)
	}
	if tr.Len() != 6 {
		t.Errorf("arrivals = %d, want 6", tr.Len())
	}
	// Counts survive the round trip at the same scale.
	back := tr.Counts(PaperScale)
	for i, want := range rows[0].Counts {
		if back[i] != want {
			t.Errorf("minute %d: %d arrivals, want %d", i+1, back[i], want)
		}
	}
}

func TestAzureCSVRoundTrip(t *testing.T) {
	r := mathx.NewRand(2)
	tr := Poisson(r, 0.8, 120)
	row := ToAzureRow(tr, PaperScale, "poisson")
	var buf bytes.Buffer
	if err := WriteAzureCSV(&buf, []AzureRow{row}); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadAzureCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Total() != tr.Len() {
		t.Fatalf("round trip lost arrivals: %d vs %d", rows[0].Total(), tr.Len())
	}
	for i, c := range rows[0].Counts {
		if c != row.Counts[i] {
			t.Fatalf("minute %d mismatch", i)
		}
	}
}

func TestWriteAzureCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAzureCSV(&buf, nil); err == nil {
		t.Error("empty rows should fail")
	}
	rows := []AzureRow{
		{Function: "a", Counts: []int{1, 2}},
		{Function: "b", Counts: []int{1}},
	}
	if err := WriteAzureCSV(&buf, rows); err == nil {
		t.Error("ragged rows should fail")
	}
}

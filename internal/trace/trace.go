// Package trace generates and manipulates invocation arrival traces.
//
// The paper drives its evaluation with invocation patterns from the Azure
// Functions dataset, scaled down so one trace minute becomes two seconds
// (§VII-A). The dataset itself is not redistributable, so this package
// provides synthetic generators reproducing the arrival-process families the
// dataset is known for (Shahrad et al., ATC'20): steady Poisson traffic,
// diurnal (periodic) load, bursty on/off traffic, and rare sharp spikes —
// plus a mixture generator ("Azure-like") that combines them. Generators are
// fully deterministic given a seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"smiless/internal/mathx"
)

// Trace is a sequence of invocation arrival times (seconds, ascending)
// over a horizon.
type Trace struct {
	// Horizon is the trace duration in seconds.
	Horizon float64
	// Arrivals holds arrival timestamps in [0, Horizon), ascending.
	Arrivals []float64
}

// Len returns the number of invocations.
func (t *Trace) Len() int { return len(t.Arrivals) }

// Rate returns the mean arrival rate in invocations per second.
func (t *Trace) Rate() float64 {
	if t.Horizon <= 0 {
		return 0
	}
	return float64(len(t.Arrivals)) / t.Horizon
}

// Counts buckets arrivals into fixed windows of the given width and returns
// the per-window counts. The paper's Online Predictor uses one-second
// windows (§IV-B).
func (t *Trace) Counts(window float64) []int {
	if window <= 0 {
		panic("trace: non-positive window")
	}
	n := int(math.Ceil(t.Horizon / window))
	if n == 0 {
		n = 1
	}
	out := make([]int, n)
	for _, a := range t.Arrivals {
		i := int(a / window)
		if i >= n {
			i = n - 1
		}
		out[i]++
	}
	return out
}

// InterArrivals returns the gaps between consecutive arrivals.
func (t *Trace) InterArrivals() []float64 {
	if len(t.Arrivals) < 2 {
		return nil
	}
	out := make([]float64, len(t.Arrivals)-1)
	for i := 1; i < len(t.Arrivals); i++ {
		out[i-1] = t.Arrivals[i] - t.Arrivals[i-1]
	}
	return out
}

// Slice returns the sub-trace with arrivals in [from, to), rebased to t=0.
func (t *Trace) Slice(from, to float64) *Trace {
	if from < 0 || to < from {
		panic(fmt.Sprintf("trace: bad slice [%v, %v)", from, to))
	}
	out := &Trace{Horizon: to - from}
	for _, a := range t.Arrivals {
		if a >= from && a < to {
			out.Arrivals = append(out.Arrivals, a-from)
		}
	}
	return out
}

// Scale returns a copy with time compressed by factor f (e.g. the paper's
// minute→2s scale-down is f = 1/30).
func (t *Trace) Scale(f float64) *Trace {
	if f <= 0 {
		panic("trace: non-positive scale factor")
	}
	out := &Trace{Horizon: t.Horizon * f, Arrivals: make([]float64, len(t.Arrivals))}
	for i, a := range t.Arrivals {
		out.Arrivals[i] = a * f
	}
	return out
}

// Merge combines multiple traces over the same horizon into one.
func Merge(traces ...*Trace) *Trace {
	out := &Trace{}
	for _, t := range traces {
		if t.Horizon > out.Horizon {
			out.Horizon = t.Horizon
		}
		out.Arrivals = append(out.Arrivals, t.Arrivals...)
	}
	sort.Float64s(out.Arrivals)
	return out
}

// FromCounts builds a trace from per-window counts by spreading each
// window's invocations uniformly at random within the window.
func FromCounts(counts []int, window float64, r *rand.Rand) *Trace {
	t := &Trace{Horizon: float64(len(counts)) * window}
	for i, c := range counts {
		base := float64(i) * window
		for j := 0; j < c; j++ {
			t.Arrivals = append(t.Arrivals, base+r.Float64()*window)
		}
	}
	sort.Float64s(t.Arrivals)
	return t
}

// Poisson generates a homogeneous Poisson arrival process with the given
// rate (arrivals/second) over the horizon.
func Poisson(r *rand.Rand, rate, horizon float64) *Trace {
	t := &Trace{Horizon: horizon}
	if rate <= 0 {
		return t
	}
	for now := mathx.Exponential(r, 1/rate); now < horizon; now += mathx.Exponential(r, 1/rate) {
		t.Arrivals = append(t.Arrivals, now)
	}
	return t
}

// Diurnal generates a non-homogeneous Poisson process whose rate follows a
// raised sinusoid: rate(t) = base·(1 + amp·sin(2πt/period)), clipped at 0.
// Models the daily periodicity dominating many Azure functions.
func Diurnal(r *rand.Rand, base, amp, period, horizon float64) *Trace {
	if period <= 0 {
		panic("trace: non-positive period")
	}
	rate := func(x float64) float64 {
		v := base * (1 + amp*math.Sin(2*math.Pi*x/period))
		if v < 0 {
			v = 0
		}
		return v
	}
	return thinned(r, rate, base*(1+math.Abs(amp)), horizon)
}

// Bursty generates on/off traffic: alternating exponentially-distributed
// quiet and busy periods; during busy periods arrivals come at burstRate.
func Bursty(r *rand.Rand, quietMean, busyMean, burstRate, horizon float64) *Trace {
	t := &Trace{Horizon: horizon}
	now := 0.0
	for now < horizon {
		now += mathx.Exponential(r, quietMean)
		busyEnd := now + mathx.Exponential(r, busyMean)
		for a := now + mathx.Exponential(r, 1/burstRate); a < busyEnd && a < horizon; a += mathx.Exponential(r, 1/burstRate) {
			t.Arrivals = append(t.Arrivals, a)
		}
		now = busyEnd
	}
	sort.Float64s(t.Arrivals)
	return t
}

// Spikes overlays nSpikes sharp bursts (spikeSize arrivals within spikeWidth
// seconds) at random positions over the horizon.
func Spikes(r *rand.Rand, nSpikes, spikeSize int, spikeWidth, horizon float64) *Trace {
	t := &Trace{Horizon: horizon}
	for s := 0; s < nSpikes; s++ {
		at := r.Float64() * (horizon - spikeWidth)
		for i := 0; i < spikeSize; i++ {
			t.Arrivals = append(t.Arrivals, at+r.Float64()*spikeWidth)
		}
	}
	sort.Float64s(t.Arrivals)
	return t
}

// Adversarial generates a regime-switching trace built to break predictors
// that assume a stationary arrival process: the horizon is cut into
// exponentially-distributed segments, each drawn independently as steady
// Poisson, periodic, on/off bursty, or near-silent traffic with its own
// rate. Every regime switch is a distribution shift, so online forecasters
// must detect drift and refit to stay accurate — exactly the workload the
// prediction-quality sweep uses to separate adaptive families from frozen
// ones.
func Adversarial(r *rand.Rand, baseRate, segMean, horizon float64) *Trace {
	if segMean <= 0 {
		panic("trace: non-positive segment mean")
	}
	parts := []*Trace{}
	for now := 0.0; now < horizon; {
		segLen := mathx.Exponential(r, segMean)
		if now+segLen > horizon {
			segLen = horizon - now
		}
		// Per-regime rate: up to 8x the base, so consecutive segments can
		// differ by an order of magnitude.
		rate := baseRate * (0.5 + 7.5*r.Float64())
		var seg *Trace
		switch r.Intn(4) {
		case 0:
			seg = Poisson(r, rate, segLen)
		case 1:
			seg = Diurnal(r, rate, 0.9, segLen/3+1, segLen)
		case 2:
			seg = Bursty(r, segLen/8+1, segLen/16+1, 4*rate, segLen)
		default:
			seg = Poisson(r, rate/16, segLen) // near-silence
		}
		shifted := &Trace{Horizon: horizon, Arrivals: make([]float64, len(seg.Arrivals))}
		for i, a := range seg.Arrivals {
			shifted.Arrivals[i] = a + now
		}
		parts = append(parts, shifted)
		now += segLen
	}
	return Merge(parts...)
}

// thinned samples a non-homogeneous Poisson process by thinning.
func thinned(r *rand.Rand, rate func(float64) float64, maxRate, horizon float64) *Trace {
	t := &Trace{Horizon: horizon}
	if maxRate <= 0 {
		return t
	}
	for now := mathx.Exponential(r, 1/maxRate); now < horizon; now += mathx.Exponential(r, 1/maxRate) {
		if r.Float64() < rate(now)/maxRate {
			t.Arrivals = append(t.Arrivals, now)
		}
	}
	return t
}

// AzureLikeParams configures the mixture generator.
type AzureLikeParams struct {
	// BaseRate is the steady background arrival rate (arrivals/second).
	BaseRate float64
	// DiurnalAmp scales the slow periodic modulation of the base rate.
	DiurnalAmp float64
	// Period of the slow periodic component in seconds.
	Period float64
	// SecondaryAmp/SecondaryPeriod add a faster periodic component: the
	// hourly-scale ebb and flow that makes production traffic learnable
	// (the paper's predictors reach 2.45% MAPE on real Azure traces
	// precisely because load ramps repeat).
	SecondaryAmp, SecondaryPeriod float64
	// BurstQuietMean/BurstBusyMean/BurstRate parameterize on/off bursts;
	// BurstRate <= 0 disables bursts.
	BurstQuietMean, BurstBusyMean, BurstRate float64
	// Spikes: NSpikes sharp bursts of SpikeSize arrivals in SpikeWidth s.
	NSpikes, SpikeSize int
	SpikeWidth         float64
	// Horizon is the total duration in seconds.
	Horizon float64
}

// DefaultAzureLike returns mixture parameters producing a trace with the
// characteristics of the scaled-down Azure Functions workload: long
// near-idle stretches (the diurnal rate touches zero), busy on/off phases,
// occasional sharp spikes, and a per-window count variance-to-mean ratio
// above 2 (the paper's test-trace property, §VII-C2).
func DefaultAzureLike(horizon float64) AzureLikeParams {
	return AzureLikeParams{
		BaseRate:        0.15,
		DiurnalAmp:      1.0,
		Period:          600,
		SecondaryAmp:    0.8,
		SecondaryPeriod: 300,
		BurstQuietMean:  300,
		BurstBusyMean:   6,
		BurstRate:       2,
		NSpikes:         int(horizon/600) + 1,
		SpikeSize:       25,
		SpikeWidth:      10,
		Horizon:         horizon,
	}
}

// DenseAzureLike returns the default mixture scaled to the invocation
// density of the paper's predictor study (§VII-C2): per-window counts carry
// learnable magnitudes and their variance-to-mean ratio exceeds two.
func DenseAzureLike(horizon float64) AzureLikeParams {
	p := DefaultAzureLike(horizon)
	p.BaseRate *= 8
	p.BurstRate *= 3
	p.SpikeSize *= 3
	return p
}

// AzureLike generates a mixture trace: a two-harmonic periodic base (slow
// diurnal plus a faster learnable ebb/flow), rare on/off bursts, and sharp
// spikes. This is the stand-in for the scaled-down Azure Functions traces.
func AzureLike(r *rand.Rand, p AzureLikeParams) *Trace {
	rate := func(x float64) float64 {
		v := 1 + p.DiurnalAmp*math.Sin(2*math.Pi*x/p.Period)
		if p.SecondaryPeriod > 0 {
			v += p.SecondaryAmp * math.Sin(2*math.Pi*x/p.SecondaryPeriod)
		}
		if v < 0 {
			v = 0
		}
		return p.BaseRate * v
	}
	maxRate := p.BaseRate * (1 + math.Abs(p.DiurnalAmp) + math.Abs(p.SecondaryAmp))
	parts := []*Trace{thinned(r, rate, maxRate, p.Horizon)}
	if p.BurstRate > 0 {
		parts = append(parts, Bursty(r, p.BurstQuietMean, p.BurstBusyMean, p.BurstRate, p.Horizon))
	}
	if p.NSpikes > 0 && p.SpikeSize > 0 {
		parts = append(parts, Spikes(r, p.NSpikes, p.SpikeSize, p.SpikeWidth, p.Horizon))
	}
	return Merge(parts...)
}

package trace

import (
	"sort"
	"testing"
	"testing/quick"

	"smiless/internal/mathx"
)

func TestPoissonRate(t *testing.T) {
	r := mathx.NewRand(1)
	tr := Poisson(r, 2.0, 10000)
	if rate := tr.Rate(); rate < 1.9 || rate > 2.1 {
		t.Errorf("rate = %v, want ~2", rate)
	}
}

func TestPoissonSorted(t *testing.T) {
	r := mathx.NewRand(2)
	tr := Poisson(r, 5, 1000)
	if !sort.Float64sAreSorted(tr.Arrivals) {
		t.Error("arrivals not sorted")
	}
	for _, a := range tr.Arrivals {
		if a < 0 || a >= tr.Horizon {
			t.Fatalf("arrival %v outside [0, %v)", a, tr.Horizon)
		}
	}
}

func TestPoissonZeroRate(t *testing.T) {
	r := mathx.NewRand(3)
	if tr := Poisson(r, 0, 100); tr.Len() != 0 {
		t.Error("zero-rate trace should be empty")
	}
}

func TestCounts(t *testing.T) {
	tr := &Trace{Horizon: 3, Arrivals: []float64{0.1, 0.5, 1.2, 2.9}}
	got := tr.Counts(1)
	want := []int{2, 1, 1}
	if len(got) != 3 {
		t.Fatalf("windows = %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCountsSumEqualsLen(t *testing.T) {
	r := mathx.NewRand(4)
	tr := AzureLike(r, DefaultAzureLike(3600))
	sum := 0
	for _, c := range tr.Counts(1) {
		sum += c
	}
	if sum != tr.Len() {
		t.Errorf("counts sum %d != arrivals %d", sum, tr.Len())
	}
}

func TestInterArrivals(t *testing.T) {
	tr := &Trace{Horizon: 10, Arrivals: []float64{1, 3, 6}}
	got := tr.InterArrivals()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("inter-arrivals = %v, want [2 3]", got)
	}
	if (&Trace{Horizon: 1}).InterArrivals() != nil {
		t.Error("empty trace should give nil inter-arrivals")
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Horizon: 10, Arrivals: []float64{1, 3, 6, 9}}
	s := tr.Slice(2, 7)
	if s.Horizon != 5 || s.Len() != 2 {
		t.Fatalf("slice = %+v", s)
	}
	if s.Arrivals[0] != 1 || s.Arrivals[1] != 4 {
		t.Errorf("rebased arrivals = %v, want [1 4]", s.Arrivals)
	}
}

func TestScale(t *testing.T) {
	// The paper's minute -> 2 s scale-down is a 1/30 factor.
	tr := &Trace{Horizon: 60, Arrivals: []float64{30, 60 - 1e-9}}
	s := tr.Scale(1.0 / 30)
	if s.Horizon != 2 || s.Arrivals[0] != 1 {
		t.Errorf("scaled = %+v", s)
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{Horizon: 5, Arrivals: []float64{1, 4}}
	b := &Trace{Horizon: 10, Arrivals: []float64{2, 3}}
	m := Merge(a, b)
	if m.Horizon != 10 || m.Len() != 4 {
		t.Fatalf("merge = %+v", m)
	}
	if !sort.Float64sAreSorted(m.Arrivals) {
		t.Error("merged arrivals not sorted")
	}
}

func TestFromCounts(t *testing.T) {
	r := mathx.NewRand(5)
	counts := []int{3, 0, 2}
	tr := FromCounts(counts, 1, r)
	if tr.Len() != 5 || tr.Horizon != 3 {
		t.Fatalf("FromCounts = %+v", tr)
	}
	back := tr.Counts(1)
	for i := range counts {
		if back[i] != counts[i] {
			t.Errorf("round trip counts[%d] = %d, want %d", i, back[i], counts[i])
		}
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	r := mathx.NewRand(6)
	tr := Diurnal(r, 2, 0.9, 100, 10000)
	// Peak windows (first quarter of each period) should see more arrivals
	// than trough windows (third quarter).
	peak, trough := 0, 0
	for _, a := range tr.Arrivals {
		phase := a - 100*float64(int(a/100))
		switch {
		case phase < 50:
			peak++
		default:
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("peak %d should exceed trough %d", peak, trough)
	}
}

func TestBurstyClusters(t *testing.T) {
	r := mathx.NewRand(7)
	tr := Bursty(r, 50, 5, 10, 20000)
	if tr.Len() == 0 {
		t.Fatal("bursty trace empty")
	}
	// Bursty traffic must have much higher inter-arrival variance than a
	// Poisson process with the same mean.
	ia := tr.InterArrivals()
	mean := mathx.Mean(ia)
	std := mathx.Std(ia)
	if std < mean {
		t.Errorf("bursty CV = %v, want > 1 (Poisson has CV = 1)", std/mean)
	}
}

func TestSpikes(t *testing.T) {
	r := mathx.NewRand(8)
	tr := Spikes(r, 3, 20, 2, 1000)
	if tr.Len() != 60 {
		t.Errorf("spikes = %d arrivals, want 60", tr.Len())
	}
}

func TestAzureLikeVMR(t *testing.T) {
	// The paper's predictor test trace has per-window VMR > 2 (§VII-C2);
	// that property holds for the dense variant the predictor experiments
	// run on (the default mixture trades some variance for learnability).
	r := mathx.NewRand(9)
	tr := AzureLike(r, DenseAzureLike(7200))
	counts := tr.Counts(1)
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	if vmr := mathx.VarianceToMeanRatio(xs); vmr <= 2 {
		t.Errorf("Azure-like VMR = %v, want > 2", vmr)
	}
}

func TestCountsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Counts(0) should panic")
		}
	}()
	(&Trace{Horizon: 1}).Counts(0)
}

// Property: Slice preserves arrival order and relative spacing, and Scale
// preserves counts.
func TestTraceTransformsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := mathx.NewRand(seed)
		tr := Poisson(r, 1+r.Float64()*3, 200)
		s := tr.Scale(0.5)
		if s.Len() != tr.Len() {
			return false
		}
		if !sort.Float64sAreSorted(s.Arrivals) {
			return false
		}
		sl := tr.Slice(50, 150)
		if !sort.Float64sAreSorted(sl.Arrivals) {
			return false
		}
		for _, a := range sl.Arrivals {
			if a < 0 || a >= sl.Horizon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

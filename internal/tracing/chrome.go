package tracing

import (
	"bufio"
	"io"
	"strconv"
)

// Chrome trace-event export. The format is the Trace Event JSON the
// chrome://tracing and Perfetto UIs load: an object with a "traceEvents"
// array of events, timestamps ("ts") and durations ("dur") in microseconds.
// Lanes:
//
//   - pid 0 "markers": instant events (decision windows, re-plans).
//   - pid 1 "cluster": one thread per container, carrying its
//     initialization and batch-execution spans.
//   - pid 1000+reqID "request N": thread 0 is the request's root span;
//     thread i+1 is DAG function i's phase segments; hedge twins get a
//     parallel lane so overlapping attempts never malform the nesting.
//
// Everything is emitted in allocation order from slices — no map iteration —
// and floats are formatted with fixed rules, so a seeded run exports
// byte-identical JSON every time.

const (
	pidMarkers = 0
	pidCluster = 1
	pidRequest = 1000 // + request id
)

// hedgeLaneOffset separates hedge-twin lanes from primary lanes inside a
// request process.
const hedgeLaneOffset = 1000

// usec renders a simulation time (seconds) as trace microseconds.
func usec(sec float64) string {
	return strconv.FormatFloat(sec*1e6, 'f', 3, 64)
}

// secs renders a duration in seconds for args payloads.
func secs(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (cw *chromeWriter) raw(s string) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.WriteString(s)
}

// event begins one trace event object; the caller appends fields via field*
// and closes with close(). Field order is fixed by call order.
func (cw *chromeWriter) begin() {
	if cw.first {
		cw.first = false
		cw.raw("\n")
	} else {
		cw.raw(",\n")
	}
	cw.raw("{")
}

func (cw *chromeWriter) sep(firstField bool) {
	if !firstField {
		cw.raw(",")
	}
}

func (cw *chromeWriter) fieldStr(name, val string, firstField bool) {
	cw.sep(firstField)
	cw.raw(strconv.Quote(name) + ":" + strconv.Quote(val))
}

func (cw *chromeWriter) fieldRaw(name, val string, firstField bool) {
	cw.sep(firstField)
	cw.raw(strconv.Quote(name) + ":" + val)
}

func (cw *chromeWriter) end() { cw.raw("}") }

// meta emits a metadata event naming a process or thread.
func (cw *chromeWriter) meta(kind string, pid, tid int, name string) {
	cw.begin()
	cw.fieldStr("name", kind, true)
	cw.fieldStr("ph", "M", false)
	cw.fieldRaw("pid", strconv.Itoa(pid), false)
	cw.fieldRaw("tid", strconv.Itoa(tid), false)
	cw.raw(`,"args":{"name":` + strconv.Quote(name) + `}`)
	cw.end()
}

// complete emits an "X" (complete) event. args holds ordered key/value
// attribute pairs, all string-valued.
func (cw *chromeWriter) complete(name, cat string, pid, tid int, start, end float64, args []KV) {
	cw.begin()
	cw.fieldStr("name", name, true)
	cw.fieldStr("cat", cat, false)
	cw.fieldStr("ph", "X", false)
	cw.fieldRaw("pid", strconv.Itoa(pid), false)
	cw.fieldRaw("tid", strconv.Itoa(tid), false)
	cw.fieldRaw("ts", usec(start), false)
	cw.fieldRaw("dur", usec(end-start), false)
	cw.argsObj(args)
	cw.end()
}

// instant emits an "i" (instant) event with global scope.
func (cw *chromeWriter) instant(name string, pid, tid int, t float64, args []KV) {
	cw.begin()
	cw.fieldStr("name", name, true)
	cw.fieldStr("cat", "marker", false)
	cw.fieldStr("ph", "i", false)
	cw.fieldStr("s", "g", false)
	cw.fieldRaw("pid", strconv.Itoa(pid), false)
	cw.fieldRaw("tid", strconv.Itoa(tid), false)
	cw.fieldRaw("ts", usec(t), false)
	cw.argsObj(args)
	cw.end()
}

func (cw *chromeWriter) argsObj(args []KV) {
	if len(args) == 0 {
		return
	}
	cw.raw(`,"args":{`)
	for i, kv := range args {
		if i > 0 {
			cw.raw(",")
		}
		cw.raw(strconv.Quote(kv.Key) + ":" + strconv.Quote(kv.Val))
	}
	cw.raw("}")
}

// WriteChromeTrace exports the full recording as Chrome trace-event JSON.
// end clamps any span still open when the run stopped. Output is
// deterministic: same recording, same bytes.
func (r *Recorder) WriteChromeTrace(w io.Writer, end float64) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw, first: true}
	cw.raw(`{"displayTimeUnit":"ms","traceEvents":[`)

	cw.meta("process_name", pidMarkers, 0, "markers")
	cw.meta("process_name", pidCluster, 0, "cluster")

	// Cluster track: one thread per container, named at first appearance.
	namedCont := make(map[int]bool)
	for _, cs := range r.conts {
		if !namedCont[cs.Container] {
			namedCont[cs.Container] = true
			cw.meta("thread_name", pidCluster, cs.Container, "c"+strconv.Itoa(cs.Container)+" "+cs.Fn)
		}
		name := "exec"
		if cs.Kind == ContainerInit {
			if cs.Prewarmed {
				name = "prewarm-init"
			} else {
				name = "init"
			}
		}
		stop := cs.End
		if cs.Open {
			stop = end
		}
		args := []KV{
			{Key: "fn", Val: cs.Fn},
			{Key: "config", Val: cs.Config},
		}
		if cs.Node >= 0 {
			args = append(args, KV{Key: "node", Val: strconv.Itoa(cs.Node)})
		}
		if cs.Kind == ContainerInit {
			args = append(args,
				KV{Key: "prewarmed", Val: strconv.FormatBool(cs.Prewarmed)},
				KV{Key: "gated", Val: strconv.FormatBool(cs.Gated)})
		} else {
			args = append(args, KV{Key: "batch", Val: strconv.Itoa(cs.Batch)})
		}
		if cs.Failed {
			args = append(args, KV{Key: "failed", Val: "true"})
		}
		cw.complete(name, "container", pidCluster, cs.Container, cs.Start, stop, args)
	}

	// Request tracks.
	for _, rt := range r.requests {
		if rt == nil {
			continue
		}
		pid := pidRequest + rt.ID
		cw.meta("process_name", pid, 0, "request "+strconv.Itoa(rt.ID))
		cw.meta("thread_name", pid, 0, "request")

		stop := rt.End
		if !rt.Done && !rt.Failed {
			stop = end
		}
		rootName := "request"
		if rt.Failed {
			rootName = "request (failed)"
		}
		rootArgs := []KV{{Key: "e2e_s", Val: secs(stop - rt.Arrival)}}
		if bd := rt.Breakdown; bd != nil {
			path := ""
			for i, n := range bd.Path {
				if i > 0 {
					path += " > "
				}
				path += n
			}
			rootArgs = append(rootArgs,
				KV{Key: "critical_path", Val: path},
				KV{Key: "blamed", Val: bd.Blamed})
			for p := Phase(0); p < NumPhases; p++ {
				if bd.Phases[p] > 0 {
					rootArgs = append(rootArgs, KV{Key: p.String() + "_s", Val: secs(bd.Phases[p])})
				}
			}
		}
		cw.complete(rootName, "request", pid, 0, rt.Arrival, stop, rootArgs)

		namedLane := make(map[int]bool)
		for _, sp := range rt.Nodes {
			idx, ok := r.nodeIdx[sp.Node]
			if !ok {
				continue
			}
			lane := idx + 1
			laneName := sp.Node
			if sp.IsHedge {
				lane += hedgeLaneOffset
				laneName += " (hedge)"
			}
			if !namedLane[lane] {
				namedLane[lane] = true
				cw.meta("thread_name", pid, lane, laneName)
			}
			spanArgs := []KV{
				{Key: "fn", Val: sp.Node},
				{Key: "config", Val: sp.Config},
				{Key: "policy", Val: sp.Policy},
				{Key: "attempts", Val: strconv.Itoa(sp.Attempts)},
				{Key: "container", Val: strconv.Itoa(sp.Container)},
				{Key: "batch", Val: strconv.Itoa(sp.Batch)},
				{Key: "hedge", Val: strconv.FormatBool(sp.IsHedge)},
				{Key: "won", Val: strconv.FormatBool(sp.Won)},
			}
			for _, seg := range sp.Segs {
				cw.complete(seg.Phase.String(), "phase", pid, lane, seg.Start, seg.End, spanArgs)
			}
			if sp.execOpen {
				cw.complete(PhaseExec.String(), "phase", pid, lane, sp.execStart, end, spanArgs)
			}
		}
	}

	// Markers.
	for _, in := range r.instants {
		cw.instant(in.Name, pidMarkers, 0, in.Time, in.Args)
	}

	cw.raw("\n]}\n")
	if cw.err != nil {
		return cw.err
	}
	return bw.Flush()
}

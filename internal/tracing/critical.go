package tracing

// Breakdown attributes one completed request's end-to-end latency to typed
// phases along its critical path: the chain of (function, member) spans from
// the last-finishing sink back through, at each step, the predecessor whose
// completion released the node. By construction the phase durations sum to
// End − Arrival (gap-filling closes any uncovered stretch as queue time), so
// the attribution reconciles with the simulator's recorded E2E latency.
type Breakdown struct {
	Req     int
	Arrival float64
	End     float64
	// E2E is End − Arrival.
	E2E float64
	// Phases is the per-phase on-path time, indexed by Phase.
	Phases [NumPhases]float64
	// Path is the critical path, source to sink, as function names.
	Path []string
	// Blamed is the function charged with the request's latency overhead:
	// the path node with the most non-execution on-path time, falling back
	// to the largest execution time when the path carries no overhead.
	// Ties resolve to the node closest to the source. A request that
	// violates its SLA is attributed to this function.
	Blamed string
}

// OnPathOverhead returns the non-execution on-path time: everything except
// PhaseExec.
func (b *Breakdown) OnPathOverhead() float64 {
	total := 0.0
	for p := Phase(0); p < NumPhases; p++ {
		if p != PhaseExec {
			total += b.Phases[p]
		}
	}
	return total
}

// PhaseSum returns the sum of all phase durations (which reconciles with
// E2E up to float addition order).
func (b *Breakdown) PhaseSum() float64 {
	total := 0.0
	for p := Phase(0); p < NumPhases; p++ {
		total += b.Phases[p]
	}
	return total
}

// nodeMembers collects a request's member spans for one node in creation
// order (primary first, hedge twin after).
func nodeMembers(rt *RequestTrace, idx int, nodes []string) []*NodeSpan {
	name := nodes[idx]
	var out []*NodeSpan
	for _, sp := range rt.Nodes {
		if sp.Node == name {
			out = append(out, sp)
		}
	}
	return out
}

// winner returns the member span whose completion advanced the request, or
// nil when the node never completed.
func winner(members []*NodeSpan) *NodeSpan {
	for _, sp := range members {
		if sp.Won {
			return sp
		}
	}
	return nil
}

// cover accumulates the phase decomposition of the interval [from, to] from
// the members' segments (in member creation order, segments in time order),
// clipping to the interval and filling uncovered stretches as PhaseQueue.
// An open execution segment (a hedged primary still running when the twin
// won) is treated as extending to the interval end.
func cover(members []*NodeSpan, from, to float64, phases *[NumPhases]float64) {
	cursor := from
	for _, sp := range members {
		for _, seg := range sp.Segs {
			addClipped(phases, seg.Phase, seg.Start, seg.End, &cursor, to)
		}
		if sp.execOpen {
			addClipped(phases, PhaseExec, sp.execStart, to, &cursor, to)
		}
	}
	if cursor < to {
		phases[PhaseQueue] += to - cursor
	}
}

// addClipped credits the part of [start, end] that lies inside
// [*cursor, limit] to phase ph and advances the cursor.
func addClipped(phases *[NumPhases]float64, ph Phase, start, end float64, cursor *float64, limit float64) {
	if start < *cursor {
		start = *cursor
	}
	if end > limit {
		end = limit
	}
	if end <= start {
		return
	}
	if start > *cursor {
		// Uncovered stretch before this segment: queueing by default.
		phases[PhaseQueue] += start - *cursor
	}
	phases[ph] += end - start
	*cursor = end
}

// criticalPath walks one completed request's span tree and produces its
// attribution. The walk starts at the won span with the latest End (the
// completion that resolved the request) and, at each node, follows the
// predecessor whose winning span finished last — exactly the dependency
// that gated the node's readiness. Ties resolve to the earliest-created
// span, which is deterministic.
func (r *Recorder) criticalPath(rt *RequestTrace) Breakdown {
	bd := Breakdown{Req: rt.ID, Arrival: rt.Arrival, End: rt.End, E2E: rt.End - rt.Arrival}

	// Sink: the winning span with the latest End over all nodes.
	sink := -1
	sinkEnd := 0.0
	for i := range r.nodes {
		if w := winner(nodeMembers(rt, i, r.nodes)); w != nil && (sink < 0 || w.End > sinkEnd) {
			sink = i
			sinkEnd = w.End
		}
	}
	if sink < 0 {
		// Nothing completed (only possible for a failed request): the whole
		// latency is unattributable; report it as queue time.
		bd.Phases[PhaseQueue] = bd.E2E
		return bd
	}

	// Walk back to a source, collecting the path in reverse.
	var rev []int
	cur := sink
	for {
		rev = append(rev, cur)
		next := -1
		nextEnd := 0.0
		for _, p := range r.preds[cur] {
			if w := winner(nodeMembers(rt, p, r.nodes)); w != nil && (next < 0 || w.End > nextEnd) {
				next = p
				nextEnd = w.End
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}

	// Attribute each on-path node's interval [ready, end], where ready is
	// the critical predecessor's finish (or arrival at the source). Using
	// the predecessor's End rather than the node's own FirstReady keeps the
	// intervals contiguous, so the phase sums telescope to E2E.
	bd.Path = make([]string, 0, len(rev))
	perNode := make([][NumPhases]float64, len(rev))
	ready := rt.Arrival
	for i := len(rev) - 1; i >= 0; i-- {
		idx := rev[i]
		members := nodeMembers(rt, idx, r.nodes)
		w := winner(members)
		cover(members, ready, w.End, &perNode[i])
		for p := Phase(0); p < NumPhases; p++ {
			bd.Phases[p] += perNode[i][p]
		}
		bd.Path = append(bd.Path, r.nodes[idx])
		ready = w.End
	}

	// Blame: most non-exec on-path time; pure-exec paths blame the largest
	// execution. Iterating source→sink with strict > resolves ties to the
	// node closest to the source.
	bestOver, bestExec := 0.0, 0.0
	blameOver, blameExec := -1, -1
	for i := len(rev) - 1; i >= 0; i-- {
		pi := len(rev) - 1 - i // position along Path (source first)
		over := 0.0
		for p := Phase(0); p < NumPhases; p++ {
			if p != PhaseExec {
				over += perNode[i][p]
			}
		}
		if over > bestOver {
			bestOver = over
			blameOver = pi
		}
		if perNode[i][PhaseExec] > bestExec {
			bestExec = perNode[i][PhaseExec]
			blameExec = pi
		}
	}
	switch {
	case blameOver >= 0:
		bd.Blamed = bd.Path[blameOver]
	case blameExec >= 0:
		bd.Blamed = bd.Path[blameExec]
	case len(bd.Path) > 0:
		bd.Blamed = bd.Path[0]
	}
	return bd
}

// Package tracing is the simulator's observability substrate: a
// deterministic per-invocation span recorder in the style of serverless DAG
// profilers (GrandSLAm's per-stage latency decomposition, Orion's per-stage
// modeling). Every invocation of every DAG function emits a span tree with
// typed phases — gateway queue, batch wait, unhidden cold initialization,
// execution, failed attempts, retry backoff — carrying (function, config,
// policy, attempt) attributes. A critical-path pass (critical.go) walks each
// completed request's spans and attributes its end-to-end latency, and any
// SLA violation, to phases and functions; an exporter (chrome.go) writes the
// whole recording as Chrome trace-event JSON loadable in chrome://tracing
// or Perfetto.
//
// The recorder is driven exclusively by the simulator clock: it never reads
// wall time, never draws randomness, and keeps every output path ordered by
// stable IDs (allocation order), so a traced run is replayable — the same
// seeded run produces byte-identical trace JSON. Attaching a recorder does
// not perturb the simulation: the simulator gates every emission on the
// recorder being present and the recorder only observes.
//
//lint:deterministic
package tracing

import "smiless/internal/dag"

// Phase is the typed cause a span segment attributes time to.
type Phase int

const (
	// PhaseQueue is gateway/function-queue time: the invocation's input was
	// ready but no instance was available or assigned yet.
	PhaseQueue Phase = iota
	// PhaseBatchWait is time spent waiting to join a busy instance's next
	// batch (the dispatch that ended the wait was a batch rotation).
	PhaseBatchWait
	// PhaseColdInit is unhidden initialization: the invocation waited on a
	// container that was still warming up.
	PhaseColdInit
	// PhaseExec is execution time on an instance.
	PhaseExec
	// PhaseFailedAttempt is execution time lost to an attempt that crashed,
	// timed out, or was evicted by a node outage.
	PhaseFailedAttempt
	// PhaseBackoff is retry-backoff delay between a failed attempt and its
	// re-dispatch becoming ready.
	PhaseBackoff
	// NumPhases is the number of typed phases.
	NumPhases
)

// String implements fmt.Stringer; the names appear in trace-event output.
func (p Phase) String() string {
	switch p {
	case PhaseQueue:
		return "queue"
	case PhaseBatchWait:
		return "batch-wait"
	case PhaseColdInit:
		return "cold-init"
	case PhaseExec:
		return "exec"
	case PhaseFailedAttempt:
		return "failed-attempt"
	case PhaseBackoff:
		return "backoff"
	default:
		return "phase-?"
	}
}

// Segment is one contiguous stretch of a node span's lifetime attributed to
// a single phase. Times are simulation seconds.
type Segment struct {
	Phase      Phase
	Start, End float64
}

// NodeSpan records one member's journey through one DAG function for one
// request: a primary attempt chain, or a hedge twin. Segments are appended
// in time order and, for the winning member, cover [FirstReady, End].
type NodeSpan struct {
	ID  int // stable span id, allocation order
	Req int // request (application invocation) id
	// Node is the DAG function name.
	Node string
	// IsHedge marks the duplicate launched by hedging.
	IsHedge bool
	// FirstReady is when the function's input first became ready (for a
	// hedge twin: when the hedge was launched).
	FirstReady float64
	// End is when the member finished (won, lost, or failed terminally).
	End float64
	// Ended reports whether the member's final execution completed.
	Ended bool
	// Won marks the member whose completion advanced the request (the first
	// completion under hedging).
	Won bool
	// Discarded marks a completed member whose result was thrown away
	// (its node was already done, or its request had failed).
	Discarded bool
	// Attempts counts dispatches of this member (>1 after retries).
	Attempts int
	// Container, Config and Policy describe the last instance the member
	// ran on and the cold-start policy in force at dispatch.
	Container int
	Config    string
	Policy    string
	// Batch is the realized batch size of the last dispatch.
	Batch int
	// Segs is the time-ordered phase decomposition.
	Segs []Segment

	waitStart float64
	execOpen  bool
	execStart float64
}

// appendSeg records a non-empty segment.
func (sp *NodeSpan) appendSeg(ph Phase, start, end float64) {
	if end > start {
		sp.Segs = append(sp.Segs, Segment{Phase: ph, Start: start, End: end})
	}
}

// WaitFrom restarts the wait clock (a backed-off retry became ready).
func (sp *NodeSpan) WaitFrom(t float64) {
	if sp == nil {
		return
	}
	sp.waitStart = t
}

// Dispatch closes the current wait as segments and opens an execution
// segment. cause classifies the wait that just ended: PhaseColdInit when the
// dispatching container just finished initializing (the wait after the
// container's initStart is attributed to unhidden cold start, any earlier
// wait to queue), PhaseBatchWait for a batch rotation on a busy instance,
// PhaseQueue otherwise.
func (sp *NodeSpan) Dispatch(t float64, cause Phase, initStart float64, container int, config, policy string, batch int) {
	if sp == nil {
		return
	}
	sp.Attempts++
	sp.Container = container
	sp.Config = config
	sp.Policy = policy
	sp.Batch = batch
	if cause == PhaseColdInit {
		split := initStart
		if split < sp.waitStart {
			split = sp.waitStart
		}
		if split > t {
			split = t
		}
		sp.appendSeg(PhaseQueue, sp.waitStart, split)
		sp.appendSeg(PhaseColdInit, split, t)
	} else {
		sp.appendSeg(cause, sp.waitStart, t)
	}
	sp.execOpen = true
	sp.execStart = t
}

// closeExec closes the open execution segment under the given phase.
func (sp *NodeSpan) closeExec(ph Phase, t float64) {
	if sp.execOpen {
		sp.appendSeg(ph, sp.execStart, t)
		sp.execOpen = false
	}
}

// Finish marks the member's final execution complete. won reports whether
// this completion advanced the request (first completion wins under
// hedging); a losing or stale completion is recorded as discarded.
func (sp *NodeSpan) Finish(t float64, won bool) {
	if sp == nil {
		return
	}
	sp.closeExec(PhaseExec, t)
	sp.End = t
	sp.Ended = true
	sp.Won = won
	sp.Discarded = !won
}

// Fail closes the open execution segment as a failed attempt (crash,
// timeout or eviction) and restarts the wait clock so an immediate
// re-dispatch is classified as queueing.
func (sp *NodeSpan) Fail(t float64) {
	if sp == nil {
		return
	}
	sp.closeExec(PhaseFailedAttempt, t)
	sp.waitStart = t
}

// Backoff records a retry-backoff delay segment [from, until] and moves the
// wait clock to its end.
func (sp *NodeSpan) Backoff(from, until float64) {
	if sp == nil {
		return
	}
	sp.appendSeg(PhaseBackoff, from, until)
	sp.waitStart = until
}

// RequestTrace is the span tree of one application invocation.
type RequestTrace struct {
	ID      int
	Arrival float64
	End     float64
	Done    bool
	Failed  bool
	// Nodes holds member spans in creation order (primaries before their
	// hedge twins; DAG order follows the simulation's event order).
	Nodes []*NodeSpan
	// Breakdown is the critical-path attribution, set on completion.
	Breakdown *Breakdown
}

// ContainerKind discriminates container-track spans.
type ContainerKind int

const (
	// ContainerInit is an initialization (cold start or pre-warm).
	ContainerInit ContainerKind = iota
	// ContainerExec is one batch execution.
	ContainerExec
)

// ContainerSpan is one instance-lifecycle span on the cluster track:
// an initialization (including pre-warm leads) or a batch execution.
type ContainerSpan struct {
	Container int
	Fn        string
	Config    string
	Kind      ContainerKind
	// Node is the cluster node the instance is placed on, or -1 when the
	// runtime does not track placement.
	Node  int
	Start float64
	End   float64
	Open  bool
	// Prewarmed marks initializations launched by a pre-warm rather than by
	// waiting work: the pre-warm lead the planner scheduled.
	Prewarmed bool
	// Gated marks initializations that completed with work already waiting
	// (the cold start was on a request path).
	Gated bool
	// Failed marks spans ended by an injected crash or eviction.
	Failed bool
	// Batch is the batch size (ContainerExec only).
	Batch int
}

// KV is one ordered attribute on an instant event. Values are preformatted
// strings so the exporter stays type-free and deterministic.
type KV struct {
	Key string
	Val string
}

// Instant is a zero-duration marker event (decision windows, re-plans).
type Instant struct {
	Time float64
	Name string
	Args []KV
}

// Recorder accumulates one run's spans. It is safe for the single-threaded
// simulator loop only; all collections are slices appended in event order so
// exports are reproducible. The zero value is not usable; construct with
// NewRecorder.
type Recorder struct {
	nodes     []string       // DAG node names in graph order
	nodeIdx   map[string]int // name -> order index (lookup only)
	preds     [][]int        // predecessor order-indices per node
	requests  []*RequestTrace
	conts     []*ContainerSpan
	openInit  map[int]int // container id -> index into conts (open init)
	openExec  map[int]int // container id -> index into conts (open exec)
	instants  []Instant
	breakdown []Breakdown // completed requests in completion order
	spanSeq   int
}

// NewRecorder builds a recorder for one run over the given application DAG.
// The graph fixes the deterministic node ordering used for critical-path
// tie-breaks and export lanes.
func NewRecorder(g *dag.Graph) *Recorder {
	ids := g.Nodes()
	r := &Recorder{
		nodes:    make([]string, len(ids)),
		nodeIdx:  make(map[string]int, len(ids)),
		preds:    make([][]int, len(ids)),
		openInit: make(map[int]int),
		openExec: make(map[int]int),
	}
	for i, id := range ids {
		r.nodes[i] = string(id)
		r.nodeIdx[string(id)] = i
	}
	for i, id := range ids {
		for _, p := range g.Predecessors(id) {
			r.preds[i] = append(r.preds[i], r.nodeIdx[string(p)])
		}
	}
	return r
}

// BeginRequest opens the root span of one application invocation. Request
// ids must be assigned sequentially from zero (the simulator's invocation
// counter), which keeps the request list index-addressable without maps.
func (r *Recorder) BeginRequest(id int, t float64) {
	for len(r.requests) <= id {
		r.requests = append(r.requests, nil)
	}
	r.requests[id] = &RequestTrace{ID: id, Arrival: t}
}

// request returns the trace for a request id, or nil.
func (r *Recorder) request(id int) *RequestTrace {
	if id < 0 || id >= len(r.requests) {
		return nil
	}
	return r.requests[id]
}

// BeginNode opens a member span for one DAG function of one request at the
// time its input became ready (or, for a hedge twin, the hedge launch time).
func (r *Recorder) BeginNode(req int, node string, t float64, isHedge bool) *NodeSpan {
	rt := r.request(req)
	if rt == nil {
		return nil
	}
	r.spanSeq++
	sp := &NodeSpan{ID: r.spanSeq, Req: req, Node: node, IsHedge: isHedge, FirstReady: t, waitStart: t}
	rt.Nodes = append(rt.Nodes, sp)
	return sp
}

// FailRequest marks a request permanently failed (retries exhausted).
func (r *Recorder) FailRequest(id int, t float64) {
	if rt := r.request(id); rt != nil {
		rt.Failed = true
		rt.End = t
	}
}

// CompleteRequest closes a request's root span and runs the critical-path
// pass, returning the resulting attribution.
func (r *Recorder) CompleteRequest(id int, t float64) Breakdown {
	rt := r.request(id)
	if rt == nil {
		return Breakdown{Req: id}
	}
	rt.Done = true
	rt.End = t
	bd := r.criticalPath(rt)
	rt.Breakdown = &bd
	r.breakdown = append(r.breakdown, bd)
	return bd
}

// Breakdowns returns the critical-path attributions of all completed
// requests in completion order.
func (r *Recorder) Breakdowns() []Breakdown { return r.breakdown }

// Requests returns all request traces in arrival (id) order. Entries may be
// nil for ids never begun.
func (r *Recorder) Requests() []*RequestTrace { return r.requests }

// BeginInit opens an initialization span on the cluster track. node is the
// placement node index, or -1 when the caller does not track placement.
func (r *Recorder) BeginInit(container int, fn, config string, node int, t float64, prewarmed bool) {
	r.conts = append(r.conts, &ContainerSpan{
		Container: container, Fn: fn, Config: config, Kind: ContainerInit,
		Node: node, Start: t, Open: true, Prewarmed: prewarmed,
	})
	r.openInit[container] = len(r.conts) - 1
}

// EndInit closes a container's open initialization span.
func (r *Recorder) EndInit(container int, t float64, gated, failed bool) {
	i, ok := r.openInit[container]
	if !ok {
		return
	}
	delete(r.openInit, container)
	cs := r.conts[i]
	cs.End = t
	cs.Open = false
	cs.Gated = gated
	cs.Failed = failed
}

// BeginExec opens a batch-execution span on the cluster track. node is the
// placement node index, or -1 when the caller does not track placement.
func (r *Recorder) BeginExec(container int, fn, config string, node int, t float64, batch int) {
	r.conts = append(r.conts, &ContainerSpan{
		Container: container, Fn: fn, Config: config, Kind: ContainerExec,
		Node: node, Start: t, Open: true, Batch: batch,
	})
	r.openExec[container] = len(r.conts) - 1
}

// EndExec closes a container's open batch-execution span.
func (r *Recorder) EndExec(container int, t float64, failed bool) {
	i, ok := r.openExec[container]
	if !ok {
		return
	}
	delete(r.openExec, container)
	cs := r.conts[i]
	cs.End = t
	cs.Open = false
	cs.Failed = failed
}

// ContainerGone closes any span still open for a terminated container
// (eviction, init crash, or end-of-run cleanup) as failed at time t.
func (r *Recorder) ContainerGone(container int, t float64) {
	r.EndInit(container, t, false, true)
	r.EndExec(container, t, true)
}

// ContainerSpans returns the cluster-track spans in begin order.
func (r *Recorder) ContainerSpans() []*ContainerSpan { return r.conts }

// AddInstant records a zero-duration marker (decision window, re-plan) with
// ordered attributes. Attribute values must be deterministic for the run —
// wall-clock timings would break byte-identical replay.
func (r *Recorder) AddInstant(t float64, name string, args []KV) {
	r.instants = append(r.instants, Instant{Time: t, Name: name, Args: args})
}

// Instants returns the recorded markers in emission order.
func (r *Recorder) Instants() []Instant { return r.instants }

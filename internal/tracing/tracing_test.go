package tracing

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"smiless/internal/dag"
)

func chain2(t *testing.T) *dag.Graph {
	t.Helper()
	g := dag.New()
	g.MustAddNode("a", "m")
	g.MustAddNode("b", "m")
	g.MustAddEdge("a", "b")
	return g
}

// TestCriticalPathReconciles walks a hand-built two-node request — queue,
// unhidden cold init, exec on "a", batch wait and exec on "b" — and checks
// the critical-path phases sum exactly to the E2E latency.
func TestCriticalPathReconciles(t *testing.T) {
	r := NewRecorder(chain2(t))
	r.BeginRequest(0, 10)

	a := r.BeginNode(0, "a", 10, false)
	// Waited 10→12 in queue, then on a container whose init started at 11.
	a.Dispatch(13, PhaseColdInit, 11, 1, "cpu4", "keepalive", 1)
	a.Finish(15, true)

	b := r.BeginNode(0, "b", 15, false)
	b.Dispatch(16, PhaseBatchWait, 0, 2, "gpu20", "prewarm", 2)
	b.Finish(18, true)

	bd := r.CompleteRequest(0, 18)
	if got, want := bd.E2E, 8.0; got != want {
		t.Fatalf("E2E = %v, want %v", got, want)
	}
	if diff := math.Abs(bd.PhaseSum() - bd.E2E); diff > 1e-9 {
		t.Fatalf("phase sum %v does not reconcile with E2E %v (diff %v)", bd.PhaseSum(), bd.E2E, diff)
	}
	// Dispatch split the wait at max(waitStart, initStart) = 11.
	if got := bd.Phases[PhaseQueue]; got != 1 {
		t.Errorf("queue = %v, want 1", got)
	}
	if got := bd.Phases[PhaseColdInit]; got != 2 {
		t.Errorf("cold-init = %v, want 2", got)
	}
	if got := bd.Phases[PhaseBatchWait]; got != 1 {
		t.Errorf("batch-wait = %v, want 1", got)
	}
	if got := bd.Phases[PhaseExec]; got != 4 {
		t.Errorf("exec = %v, want 4", got)
	}
	if len(bd.Path) != 2 || bd.Path[0] != "a" || bd.Path[1] != "b" {
		t.Errorf("path = %v, want [a b]", bd.Path)
	}
	// "a" carries 3s of overhead vs "b"'s 1s.
	if bd.Blamed != "a" {
		t.Errorf("blamed = %q, want a", bd.Blamed)
	}
}

// TestHedgeCoverage checks that when a hedge twin wins, the node interval is
// still fully covered: the primary's still-open execution is clipped to the
// winner's end as exec time, with no double counting.
func TestHedgeCoverage(t *testing.T) {
	g := dag.New()
	g.MustAddNode("a", "m")
	r := NewRecorder(g)
	r.BeginRequest(0, 0)

	prim := r.BeginNode(0, "a", 0, false)
	prim.Dispatch(1, PhaseQueue, 0, 1, "cpu4", "keepalive", 1)
	// Primary stalls (straggler); hedge launches at 3 and wins at 5.
	hedge := r.BeginNode(0, "a", 3, true)
	hedge.Dispatch(3, PhaseQueue, 0, 2, "cpu4", "keepalive", 1)
	hedge.Finish(5, true)

	bd := r.CompleteRequest(0, 5)
	if diff := math.Abs(bd.PhaseSum() - bd.E2E); diff > 1e-9 {
		t.Fatalf("phase sum %v != E2E %v", bd.PhaseSum(), bd.E2E)
	}
	// Primary: queue [0,1], exec (open) clipped [1,5] → but the hedge's
	// segments come after in creation order and are fully shadowed.
	if got, want := bd.Phases[PhaseExec], 4.0; got != want {
		t.Errorf("exec = %v, want %v", got, want)
	}
	if got, want := bd.Phases[PhaseQueue], 1.0; got != want {
		t.Errorf("queue = %v, want %v", got, want)
	}
}

// TestRetryPhases checks that failed attempts and backoff show up as their
// own phases and still reconcile.
func TestRetryPhases(t *testing.T) {
	g := dag.New()
	g.MustAddNode("a", "m")
	r := NewRecorder(g)
	r.BeginRequest(0, 0)

	sp := r.BeginNode(0, "a", 0, false)
	sp.Dispatch(1, PhaseQueue, 0, 1, "cpu4", "keepalive", 1)
	sp.Fail(2) // attempt crashed after 1s
	sp.Backoff(2, 4)
	sp.Dispatch(5, PhaseQueue, 0, 3, "cpu4", "keepalive", 1)
	sp.Finish(7, true)

	bd := r.CompleteRequest(0, 7)
	if diff := math.Abs(bd.PhaseSum() - bd.E2E); diff > 1e-9 {
		t.Fatalf("phase sum %v != E2E %v", bd.PhaseSum(), bd.E2E)
	}
	if got := bd.Phases[PhaseFailedAttempt]; got != 1 {
		t.Errorf("failed-attempt = %v, want 1", got)
	}
	if got := bd.Phases[PhaseBackoff]; got != 2 {
		t.Errorf("backoff = %v, want 2", got)
	}
	if got := bd.Phases[PhaseQueue]; got != 2 {
		t.Errorf("queue = %v, want 2", got)
	}
	if got := bd.Phases[PhaseExec]; got != 2 {
		t.Errorf("exec = %v, want 2", got)
	}
	if sp.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", sp.Attempts)
	}
}

// TestChromeExportValidAndDeterministic checks the exporter emits valid JSON
// and that exporting the same recording twice is byte-identical.
func TestChromeExportValidAndDeterministic(t *testing.T) {
	r := NewRecorder(chain2(t))
	r.BeginInit(1, "a", "cpu4", 0, 0, true)
	r.EndInit(1, 4, true, false)
	r.BeginRequest(0, 2)
	a := r.BeginNode(0, "a", 2, false)
	a.Dispatch(4, PhaseColdInit, 0, 1, "cpu4", "prewarm", 1)
	r.BeginExec(1, "a", "cpu4", 0, 4, 1)
	a.Finish(6, true)
	r.EndExec(1, 6, false)
	b := r.BeginNode(0, "b", 6, false)
	b.Dispatch(6, PhaseQueue, 0, 2, "gpu20", "keepalive", 1)
	b.Finish(9, true)
	r.CompleteRequest(0, 9)
	r.AddInstant(10, "window", []KV{{Key: "it", Val: "1"}})

	var buf1, buf2 bytes.Buffer
	if err := r.WriteChromeTrace(&buf1, 12); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := r.WriteChromeTrace(&buf2, 12); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two exports of the same recording differ")
	}
	if !json.Valid(buf1.Bytes()) {
		t.Fatalf("exporter produced invalid JSON:\n%s", buf1.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf1.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	phases, metas, instants := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "phase" {
				phases++
			}
		case "M":
			metas++
		case "i":
			instants++
		}
	}
	if phases == 0 || metas == 0 || instants != 1 {
		t.Fatalf("unexpected event mix: phases=%d metas=%d instants=%d", phases, metas, instants)
	}
}

// TestFailedRequestBreakdown checks a request that never completes still
// yields a reconciling (all-queue) breakdown instead of panicking.
func TestFailedRequestBreakdown(t *testing.T) {
	r := NewRecorder(chain2(t))
	r.BeginRequest(0, 0)
	sp := r.BeginNode(0, "a", 0, false)
	sp.Dispatch(1, PhaseQueue, 0, 1, "cpu4", "keepalive", 1)
	sp.Fail(2)
	r.FailRequest(0, 2)
	// CompleteRequest is never called for failed requests in the simulator;
	// exercise criticalPath directly for robustness.
	bd := r.criticalPath(r.request(0))
	if diff := math.Abs(bd.PhaseSum() - bd.E2E); diff > 1e-9 {
		t.Fatalf("phase sum %v != E2E %v", bd.PhaseSum(), bd.E2E)
	}
}

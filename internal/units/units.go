// Package units provides the typed time quantity used across the SMIless
// codebase. The simulator, profiler and performance models all operate on
// simulated time — float64 values that the paper's equations express in
// seconds — while the metrics exposition format and several serverless
// platform APIs speak milliseconds. Duration makes that boundary explicit:
// raw float64 seconds and milliseconds no longer mix silently, and the
// unitsafety analyzer (internal/lint) flags code that combines Ms- and
// Sec-suffixed raw floats instead of converting through this type.
//
// Duration is deliberately a defined float64, not a struct: arithmetic
// (d1 + d2, d * 3) keeps working, conversion is free, and values are
// bit-identical to the raw seconds they replace, so adopting it cannot
// perturb any reproducible simulation result.
package units

import (
	"fmt"
	"math"
)

// Duration is a span of simulated time in seconds. The zero value is zero
// seconds.
type Duration float64

// Seconds constructs a Duration from raw seconds.
func Seconds(s float64) Duration { return Duration(s) }

// Millis constructs a Duration from raw milliseconds.
func Millis(ms float64) Duration { return Duration(ms / 1e3) }

// Micros constructs a Duration from raw microseconds.
func Micros(us float64) Duration { return Duration(us / 1e6) }

// Seconds returns the duration as raw seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Millis returns the duration as raw milliseconds.
func (d Duration) Millis() float64 { return float64(d) * 1e3 }

// Micros returns the duration as raw microseconds.
func (d Duration) Micros() float64 { return float64(d) * 1e6 }

// Min returns the smaller of d and other.
func (d Duration) Min(other Duration) Duration {
	if other < d {
		return other
	}
	return d
}

// Max returns the larger of d and other.
func (d Duration) Max(other Duration) Duration {
	if other > d {
		return other
	}
	return d
}

// IsValid reports whether the duration is a finite, non-negative span —
// what every sampled timing in the simulator must be.
func (d Duration) IsValid() bool {
	f := float64(d)
	return f >= 0 && !math.IsInf(f, 0) && !math.IsNaN(f)
}

// String formats the duration with a unit chosen for readability.
func (d Duration) String() string {
	s := float64(d)
	abs := math.Abs(s)
	switch {
	case abs == 0: //lint:allow floateq exact zero picks the unitless format; any other value has a magnitude
		return "0s"
	case abs < 1e-3:
		return fmt.Sprintf("%.3gµs", s*1e6)
	case abs < 1:
		return fmt.Sprintf("%.3gms", s*1e3)
	default:
		return fmt.Sprintf("%.4gs", s)
	}
}

package units

import (
	"math"
	"testing"
)

func TestConversionsRoundTrip(t *testing.T) {
	d := Millis(1500)
	if d.Seconds() != 1.5 {
		t.Errorf("Millis(1500).Seconds() = %v, want 1.5", d.Seconds())
	}
	if Seconds(2).Millis() != 2000 {
		t.Errorf("Seconds(2).Millis() = %v, want 2000", Seconds(2).Millis())
	}
	if Micros(250).Seconds() != 0.00025 {
		t.Errorf("Micros(250).Seconds() = %v, want 0.00025", Micros(250).Seconds())
	}
}

func TestMinMax(t *testing.T) {
	a, b := Seconds(1), Seconds(2)
	if a.Min(b) != a || b.Min(a) != a {
		t.Error("Min should return the smaller duration")
	}
	if a.Max(b) != b || b.Max(a) != b {
		t.Error("Max should return the larger duration")
	}
}

func TestIsValid(t *testing.T) {
	for _, tc := range []struct {
		d    Duration
		want bool
	}{
		{Seconds(0), true},
		{Seconds(1.5), true},
		{Seconds(-0.001), false},
		{Seconds(math.NaN()), false},
		{Seconds(math.Inf(1)), false},
	} {
		if got := tc.d.IsValid(); got != tc.want {
			t.Errorf("IsValid(%v) = %v, want %v", float64(tc.d), got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	for _, tc := range []struct {
		d    Duration
		want string
	}{
		{Seconds(0), "0s"},
		{Micros(5), "5µs"},
		{Millis(12), "12ms"},
		{Seconds(3.25), "3.25s"},
	} {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", float64(tc.d), got, tc.want)
		}
	}
}

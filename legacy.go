package smiless

// Deprecated positional-argument shims for the pre-options API. Each is a
// thin wrapper over its options-based replacement with identical behavior
// (including panicking where the old signature had no error return); new
// code should call the replacement directly. See README "Public API" for
// the old → new migration table.

// EvaluateLegacy runs a named system with the pre-options signature,
// panicking on error as the old Evaluate did.
//
// Deprecated: use Evaluate with WithSeed / WithLSTM.
func EvaluateLegacy(system SystemName, app *Application, tr *Trace, sla float64, seed int64, useLSTM bool) *RunStats {
	st, err := Evaluate(system, app, tr, sla, WithSeed(seed), WithLSTM(useLSTM))
	if err != nil {
		panic(err)
	}
	return st
}

// NewSimulatorLegacy prepares a simulator with the pre-options signature.
//
// Deprecated: use NewSimulator with WithSeed.
func NewSimulatorLegacy(app *Application, driver Driver, sla float64, seed int64) (*Simulator, error) {
	return NewSimulator(app, driver, sla, WithSeed(seed))
}

// NewSMIlessLegacy builds the SMIless controller from an explicit
// ControllerOptions value, the pre-options signature.
//
// Deprecated: use NewSMIless with WithControllerOptions (or WithSeed /
// WithLSTM / WithParallelism for the common knobs).
func NewSMIlessLegacy(cat *Catalog, profiles map[NodeID]*FnProfile, sla float64, opts ControllerOptions) Driver {
	return NewSMIless(cat, profiles, sla, WithControllerOptions(opts))
}

package smiless

import (
	"smiless/internal/controller"
	"smiless/internal/core"
	"smiless/internal/faults"
	"smiless/internal/hardware"
	"smiless/internal/placement"
	"smiless/internal/simulator"
	"smiless/internal/tracing"
)

// Observability and fault-injection surface, re-exported so runs configured
// through this package can use them without reaching into internal/.
type (
	// Recorder is the deterministic span recorder: attach one with
	// WithRecorder to get per-invocation span trees, critical-path phase
	// attribution and Chrome trace-event export (DESIGN.md §10).
	Recorder = tracing.Recorder
	// FaultPlan schedules failure injection — container crashes,
	// stragglers, node outages — into a run (DESIGN.md §7).
	FaultPlan = faults.Plan
	// FaultRates are per-function failure probabilities for a FaultPlan.
	FaultRates = faults.Rates
	// FaultOutage schedules one node's downtime window in a FaultPlan.
	FaultOutage = faults.Outage
	// SearchStats summarizes one Optimize call's search machinery:
	// worker-pool width and evaluation-cache hit/miss counters.
	SearchStats = core.SearchStats
	// CacheStats are the evaluation cache's hit/miss counters by level.
	CacheStats = core.CacheStats
)

// NewRecorder returns a span recorder for app's DAG, ready to pass to
// WithRecorder. After the run, use Recorder.WriteChromeTrace (or the
// critical-path accessors) on it.
func NewRecorder(app *Application) *Recorder {
	return tracing.NewRecorder(app.Graph)
}

// EvaluateOptions collects the optional knobs of Evaluate, NewSimulator,
// NewSMIless and Optimize. The zero value is the default configuration:
// seed 0, moving-window predictors (no LSTM), no tracing, no faults, and a
// path-search worker pool as wide as the machine. Construct it through
// functional options:
//
//	st, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0,
//	    smiless.WithSeed(7),
//	    smiless.WithLSTM(true),
//	    smiless.WithRecorder(rec),
//	)
type EvaluateOptions struct {
	// Seed drives every stochastic component (profiler noise, predictor
	// initialization, fault schedules).
	Seed int64
	// UseLSTM enables the trained predictors in SMIless variants; when false
	// a lightweight moving-window estimator is used throughout.
	UseLSTM bool
	// Forecaster names the forecaster family serving the SMIless Online
	// Predictor (see Forecasters for the registered names); empty keeps the
	// default (the paper's LSTM pair). Unknown names make Evaluate and
	// NewDriver-based paths fail with a typed *ConfigError. Set via
	// WithForecaster, which also enables the trained predictors.
	Forecaster string
	// Recorder, when non-nil, records span trees for every invocation.
	// Statistics are bit-identical with and without a recorder attached.
	Recorder *Recorder
	// Faults, when non-nil, injects the scheduled failures into the run.
	Faults *FaultPlan
	// Parallelism bounds the Strategy Optimizer's path-search worker pool:
	// 0 uses every available core, 1 forces the sequential inline search.
	// Plans are byte-identical at any width.
	Parallelism int
	// Window is the decision-window length in seconds for NewSimulator;
	// 0 keeps the paper's one-second default.
	Window float64
	// Controller, when non-nil, overrides the full controller
	// configuration (ablation switches, train/retrain schedule, SLA
	// margin). Set it via WithControllerOptions; later WithSeed / WithLSTM
	// / WithParallelism options still override the corresponding fields.
	Controller *ControllerOptions
	// Placement selects the simulator's node-placement policy (default
	// first-fit). Set via WithPlacement.
	Placement PlacementPolicy
	// Interference, when non-nil, turns on co-location interference and
	// makes SMIless plan against the model's expected slowdown. Set via
	// WithInterference.
	Interference *PlacementModel
	// PriceTrace, when non-nil, bills containers at the trace's spot
	// multiplier and realizes its preemption windows. Set via
	// WithPriceTrace.
	PriceTrace *PriceTrace
}

// Option mutates EvaluateOptions; options are applied in order, so the last
// setting of a field wins.
type Option func(*EvaluateOptions)

// WithSeed seeds the run's stochastic components (default 0).
func WithSeed(seed int64) Option {
	return func(o *EvaluateOptions) {
		o.Seed = seed
		if o.Controller != nil {
			o.Controller.Seed = seed
		}
	}
}

// WithLSTM toggles the LSTM predictors in SMIless variants (default off:
// the moving-window estimator).
func WithLSTM(enabled bool) Option {
	return func(o *EvaluateOptions) {
		o.UseLSTM = enabled
		if o.Controller != nil {
			o.Controller.UseLSTM = enabled
		}
	}
}

// WithForecaster selects the forecaster family behind the SMIless Online
// Predictor by registry name — "lstm" (default), "arima", "fip", "gbt",
// "histogram", "naive" or "transformer"; Forecasters() enumerates them.
// Selecting a forecaster implies WithLSTM(true) (a named forecaster is
// pointless with the trained predictors disabled); pass WithLSTM(false)
// afterwards to keep the moving-window estimator anyway. Unknown names
// surface as a typed *ConfigError from Evaluate.
func WithForecaster(name string) Option {
	return func(o *EvaluateOptions) {
		o.Forecaster = name
		o.UseLSTM = true
		if o.Controller != nil {
			o.Controller.Forecaster = name
			o.Controller.UseLSTM = true
		}
	}
}

// WithRecorder attaches a span recorder to the run (see NewRecorder).
func WithRecorder(rec *Recorder) Option {
	return func(o *EvaluateOptions) { o.Recorder = rec }
}

// WithFaults injects a fault plan into the run; nil restores the fault-free
// substrate.
func WithFaults(plan *FaultPlan) Option {
	return func(o *EvaluateOptions) { o.Faults = plan }
}

// WithParallelism bounds the Strategy Optimizer's path-search worker pool
// (0 = all cores, 1 = sequential). The resulting plans are byte-identical
// at any width; only search wall time changes.
func WithParallelism(workers int) Option {
	return func(o *EvaluateOptions) {
		o.Parallelism = workers
		if o.Controller != nil {
			o.Controller.Parallelism = workers
		}
	}
}

// WithPlacement selects the node-placement policy: PlaceFirstFit (the
// default), PlaceP2C locality overflow, PlacePack affinity packing or
// PlaceSpread interference spreading.
func WithPlacement(p PlacementPolicy) Option {
	return func(o *EvaluateOptions) { o.Placement = p }
}

// WithInterference turns on co-location interference at the given scale of
// the default matrix (0 or negative = off, byte-identical to the
// interference-blind build; 1 = as tabled). The SMIless controller also
// starts planning against the model's expected slowdown.
func WithInterference(scale float64) Option {
	return func(o *EvaluateOptions) {
		o.Interference = placement.Default(scale)
		if o.Controller != nil {
			o.Controller.Interference = o.Interference
		}
	}
}

// WithPriceTrace bills the run against a spot-price scenario: container
// lifetimes are charged at the in-effect multiplier and the trace's
// preemption windows withdraw nodes mid-run. Nil restores static prices.
func WithPriceTrace(pt *PriceTrace) Option {
	return func(o *EvaluateOptions) { o.PriceTrace = pt }
}

// WithWindow sets the decision-window length in seconds for NewSimulator
// (default 1, the paper's cadence). Negative values are rejected by the
// simulator's configuration validation.
func WithWindow(seconds float64) Option {
	return func(o *EvaluateOptions) { o.Window = seconds }
}

// WithControllerOptions replaces the SMIless controller configuration
// wholesale (ablations, train/retrain schedule, SLA margin). It also adopts
// the configuration's Seed/UseLSTM/Parallelism as the run-level values, so
// apply it before any option that should override one of them.
func WithControllerOptions(co ControllerOptions) Option {
	return func(o *EvaluateOptions) {
		o.Controller = &co
		o.Seed = co.Seed
		o.UseLSTM = co.UseLSTM
		o.Forecaster = co.Forecaster
		o.Parallelism = co.Parallelism
	}
}

// newEvaluateOptions folds opts over the zero default.
func newEvaluateOptions(opts []Option) EvaluateOptions {
	var o EvaluateOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// controllerOptions resolves the effective controller configuration.
func (o *EvaluateOptions) controllerOptions() ControllerOptions {
	if o.Controller != nil {
		return *o.Controller
	}
	co := controller.DefaultOptions(o.Seed)
	co.UseLSTM = o.UseLSTM
	co.Forecaster = o.Forecaster
	co.Parallelism = o.Parallelism
	co.Interference = o.Interference
	return co
}

// Heterogeneous-placement surface, re-exported like the fault and tracing
// types above.
type (
	// PlacementPolicy selects how new containers are placed on nodes.
	PlacementPolicy = simulator.PlacementPolicy
	// PlacementModel is the co-location interference model (DESIGN.md §17).
	PlacementModel = placement.Model
	// PriceTrace is a spot-price scenario: a piecewise-constant price
	// multiplier plus preemption windows.
	PriceTrace = hardware.PriceTrace
	// PreemptionWindow withdraws one node for a spot reclaim interval.
	PreemptionWindow = hardware.PreemptionWindow
)

// Placement policies for WithPlacement.
const (
	PlaceFirstFit = simulator.PlaceFirstFit
	PlaceP2C      = simulator.PlaceP2C
	PlacePack     = simulator.PlacePack
	PlaceSpread   = simulator.PlaceSpread
)

// Spot-price scenario generators (internal/hardware).
var (
	// StepPriceTrace is a seeded random-walk multiplier, no preemptions.
	StepPriceTrace = hardware.StepPriceTrace
	// SpikePriceTrace adds price spikes whose peaks preempt nodes.
	SpikePriceTrace = hardware.SpikePriceTrace
	// FlatPriceTrace bills a constant multiplier; FlatPriceTrace(1) is
	// bit-identical to no trace at all.
	FlatPriceTrace = hardware.FlatTrace
)

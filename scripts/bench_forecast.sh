#!/bin/sh
# bench-forecast: run the forecasting subsystem benchmark suite (per-family
# refit cost, per-window predict cost, and the Online quality-harness step),
# convert the output to BENCH_forecast.json via cmd/benchjson, and — when a
# committed baseline exists — fail on any regression beyond the noise band
# via cmd/benchgate. Refit cost is what bounds how aggressively the drift
# detector may force retraining, so it is gated, not just trended.
#
# Environment knobs:
#   NOISE      allowed fractional regression (default 0.75 = fail >1.75x)
#   BENCHTIME  go test -benchtime value (default 100ms, time-based: the
#              sub-microsecond families get thousands of iterations — a
#              fixed low count like 20x measures timer jitter for those —
#              while the hundreds-of-ms LSTM refit runs just once, which
#              is already low-variance for an op that long)
#   OUT        artifact path (default BENCH_forecast.json)
set -eu

GO=${GO:-go}
NOISE=${NOISE:-0.75}
BENCHTIME=${BENCHTIME:-100ms}
OUT=${OUT:-BENCH_forecast.json}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "bench-forecast: running BenchmarkForecast suite (-benchtime $BENCHTIME)"
$GO test -bench 'BenchmarkForecast' -benchtime "$BENCHTIME" -benchmem -run '^$' \
    ./internal/forecast | tee "$tmp/bench.txt"
$GO run ./cmd/benchjson -o "$tmp/BENCH_forecast.json" <"$tmp/bench.txt"

if [ -f "$OUT" ]; then
    echo "bench-forecast: gating against committed $OUT (noise band $NOISE)"
    $GO run ./cmd/benchgate \
        -baseline "$OUT" \
        -current "$tmp/BENCH_forecast.json" \
        -noise "$NOISE"
else
    echo "bench-forecast: no baseline at $OUT yet; seeding the trajectory"
fi

mv "$tmp/BENCH_forecast.json" "$OUT"
echo "bench-forecast: wrote $OUT"

#!/bin/sh
# bench-serve: run the serving/harness benchmark suite (sharded pacer
# against a null sink, the full in-process gateway path, and the runtime
# invoke hot path), convert the output to BENCH_serve.json via
# cmd/benchjson, and — when a committed baseline exists — fail on any
# regression beyond the noise band via cmd/benchgate. This is the perf gate
# that seeds the BENCH_* trajectory across PRs.
#
# Environment knobs:
#   NOISE      allowed fractional regression (default 0.75 = fail >1.75x)
#   BENCHTIME  go test -benchtime value (default 10000x: fixed iteration
#              counts keep run-to-run variance out of the gate)
#   OUT        artifact path (default BENCH_serve.json)
set -eu

GO=${GO:-go}
NOISE=${NOISE:-0.75}
BENCHTIME=${BENCHTIME:-10000x}
OUT=${OUT:-BENCH_serve.json}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

echo "bench-serve: running BenchmarkServe suite (-benchtime $BENCHTIME)"
$GO test -bench 'BenchmarkServe' -benchtime "$BENCHTIME" -benchmem -run '^$' \
    ./cmd/loadgen ./internal/serving | tee "$tmp/bench.txt"
$GO run ./cmd/benchjson -o "$tmp/BENCH_serve.json" <"$tmp/bench.txt"

if [ -f "$OUT" ]; then
    echo "bench-serve: gating against committed $OUT (noise band $NOISE)"
    $GO run ./cmd/benchgate \
        -baseline "$OUT" \
        -current "$tmp/BENCH_serve.json" \
        -noise "$NOISE" \
        -higher-better rps \
        -gate-extra rps
else
    echo "bench-serve: no baseline at $OUT yet; seeding the trajectory"
fi

mv "$tmp/BENCH_serve.json" "$OUT"
echo "bench-serve: wrote $OUT"

#!/bin/sh
# chaos-smoke: boot the live gateway with a multi-node control plane under
# the race detector, replay a seeded open-loop trace, and — mid-load — kill
# and restart one node through the /chaos endpoints. The run fails on any
# lost or duplicated request (loadgen -require-clean: every request must
# come back exactly once with HTTP 200), any 5xx, or a data race.
set -eu

# Timescale 10 keeps the replay at ~7 s of wall clock, long enough that the
# node kill below lands while requests are genuinely in flight.
GO=${GO:-go}
TIMESCALE=${TIMESCALE:-10}
REQUESTS=${REQUESTS:-200}
NODES=${NODES:-3}

workdir=$(mktemp -d)
addr_file="$workdir/addr"
serve_log="$workdir/serve.log"
report="$workdir/report.json"

cleanup() {
    status=$?
    if [ -n "${serve_pid:-}" ] && kill -0 "$serve_pid" 2>/dev/null; then
        kill -TERM "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ] && [ -f "$serve_log" ]; then
        echo "--- smiless-serve log ---" >&2
        cat "$serve_log" >&2
    fi
    rm -rf "$workdir"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "chaos-smoke: building binaries (gateway with -race)"
$GO build -race -o "$workdir/smiless-serve" ./cmd/smiless-serve
$GO build -o "$workdir/loadgen" ./cmd/loadgen

echo "chaos-smoke: booting gateway (nodes=$NODES, timescale ${TIMESCALE}x)"
"$workdir/smiless-serve" \
    -addr 127.0.0.1:0 \
    -addr-file "$addr_file" \
    -timescale "$TIMESCALE" \
    -nodes "$NODES" \
    -seed 1 \
    >"$serve_log" 2>&1 &
serve_pid=$!

i=0
while [ ! -s "$addr_file" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "chaos-smoke: gateway never wrote $addr_file" >&2
        exit 1
    fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "chaos-smoke: gateway exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$addr_file")
echo "chaos-smoke: gateway at $addr"

# Kick the load, then murder a node while it is mid-flight. loadgen exits
# non-zero unless every request resolves as a clean 200 — a request stranded
# on the dead node (lost) or answered twice by a sloppy failover (duplicated,
# which would desync the response channel) both break that.
"$workdir/loadgen" \
    -url "http://$addr" \
    -requests "$REQUESTS" \
    -rate 3 \
    -horizon 600 \
    -seed 1 \
    -timescale "$TIMESCALE" \
    -check-metrics \
    -require-clean \
    -json "$report" &
load_pid=$!

sleep 2
echo "chaos-smoke: killing node 1 mid-load"
curl -fsS -X POST "http://$addr/chaos/kill?node=1" >/dev/null
sleep 2
echo "chaos-smoke: restarting node 1"
curl -fsS -X POST "http://$addr/chaos/restart?node=1" >/dev/null

if ! wait "$load_pid"; then
    echo "chaos-smoke: loadgen reported lost/duplicated/5xx requests" >&2
    exit 1
fi

# Cross-check the server's ledger against the client's: the gateway must have
# completed exactly as many requests as the client sent. Fewer means a lost
# request slipped past the client; more means a failover duplicated one.
# Exposition lines are "name{labels} value timestamp_ms": the value is the
# second-to-last field.
server_completed=$(curl -fsS "http://$addr/metrics" \
    | awk '/^smiless_requests_completed_total/ {sum += $(NF - 1)} END {printf "%d", sum}')
if [ "$server_completed" -ne "$REQUESTS" ]; then
    echo "chaos-smoke: server completed $server_completed of $REQUESTS requests (lost or duplicated work)" >&2
    exit 1
fi

nodes_json=$(curl -fsS "http://$addr/nodes")
case "$nodes_json" in
*'"health"'*) : ;;
*)
    echo "chaos-smoke: /nodes returned no health info: $nodes_json" >&2
    exit 1
    ;;
esac

echo "chaos-smoke: draining gateway"
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "chaos-smoke: OK (server completed $server_completed/$REQUESTS through a node kill+restart)"

#!/bin/sh
# serve-smoke: boot the live gateway on a random port, replay a seeded
# open-loop trace through loadgen, and assert zero 5xx plus a well-formed
# /metrics scrape. Runs 25x faster than real time so the whole exercise
# stays under ~30 s of wall clock.
set -eu

GO=${GO:-go}
TIMESCALE=${TIMESCALE:-25}
REQUESTS=${REQUESTS:-200}

workdir=$(mktemp -d)
addr_file="$workdir/addr"
serve_log="$workdir/serve.log"

cleanup() {
    status=$?
    if [ -n "${serve_pid:-}" ] && kill -0 "$serve_pid" 2>/dev/null; then
        kill -TERM "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ] && [ -f "$serve_log" ]; then
        echo "--- smiless-serve log ---" >&2
        cat "$serve_log" >&2
    fi
    rm -rf "$workdir"
    exit "$status"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
$GO build -o "$workdir/smiless-serve" ./cmd/smiless-serve
$GO build -o "$workdir/loadgen" ./cmd/loadgen

echo "serve-smoke: booting gateway (timescale ${TIMESCALE}x)"
"$workdir/smiless-serve" \
    -addr 127.0.0.1:0 \
    -addr-file "$addr_file" \
    -timescale "$TIMESCALE" \
    -seed 1 \
    >"$serve_log" 2>&1 &
serve_pid=$!

# Wait for the gateway to publish its bound address.
i=0
while [ ! -s "$addr_file" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: gateway never wrote $addr_file" >&2
        exit 1
    fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "serve-smoke: gateway exited during startup" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$addr_file")
echo "serve-smoke: gateway at $addr"

# loadgen exits non-zero on any transport error, 5xx, or malformed
# /metrics, which is exactly the smoke assertion.
"$workdir/loadgen" \
    -url "http://$addr" \
    -requests "$REQUESTS" \
    -rate 3 \
    -horizon 600 \
    -seed 1 \
    -timescale "$TIMESCALE" \
    -check-metrics

echo "serve-smoke: draining gateway"
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "serve-smoke: OK"

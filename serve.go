package smiless

import (
	"smiless/internal/clock"
	"smiless/internal/experiments"
	"smiless/internal/serving"
)

// Online serving surface (DESIGN.md §12), re-exported so live deployments
// can be wired through this package alone: a wall-clock Runtime walks the
// application DAG through a concurrent executor pool, honoring the same
// perfmodel latencies, cold-start policies and fault plans as the
// simulator, and a Gateway exposes it over HTTP.
type (
	// Clock abstracts time for the serving runtime: wall clock in
	// production, scaled wall clock for accelerated soak tests, fake clock
	// for deterministic integration tests.
	Clock = clock.Scheduler
	// FakeClock is the manually-advanced clock used by deterministic
	// serving tests (Advance, AdvanceToNext).
	FakeClock = clock.Fake
	// ServeConfig configures a serving Runtime. The zero value of the
	// optional fields picks production defaults (wall clock, 1 s decision
	// windows, SLA 2 s).
	ServeConfig = serving.Config
	// ServeResult is one live invocation's outcome.
	ServeResult = serving.Result
	// Runtime is the online serving runtime: the live counterpart of
	// Simulator, implementing the same control-plane surface for drivers.
	Runtime = serving.Runtime
	// Gateway serves a Runtime over HTTP: /invoke, /healthz, /metrics,
	// /statz and /trace.
	Gateway = serving.Gateway
)

// NewWallClock returns the production clock (real time, seconds since
// construction).
func NewWallClock() Clock { return clock.NewWall() }

// NewScaledWallClock returns a wall clock running factor× faster than real
// time, for accelerated smoke and soak tests. factor <= 0 falls back to 1.
func NewScaledWallClock(factor float64) Clock { return clock.NewScaledWall(factor) }

// NewFakeClock returns a manually-advanced clock for deterministic serving
// tests.
func NewFakeClock() *FakeClock { return clock.NewFake() }

// NewRuntime builds and validates (but does not start) an online serving
// runtime around driver. Call Runtime.Start, then Invoke or serve it
// through NewServingGateway.
func NewRuntime(cfg ServeConfig, driver Driver) (*Runtime, error) {
	return serving.New(cfg, driver)
}

// NewServingGateway wraps rt in the HTTP gateway. system names the driver
// in /statz and /healthz responses.
func NewServingGateway(rt *Runtime, system string) *Gateway {
	return serving.NewGateway(rt, system)
}

// NewSystemDriver builds the named serving system as a live Driver for a
// Runtime (or a Simulator). SystemOPT is rejected: the oracle needs the
// full future trace and cannot serve online. Options: WithSeed, WithLSTM,
// WithParallelism, WithControllerOptions.
func NewSystemDriver(system SystemName, app *Application, sla float64, opts ...Option) (Driver, error) {
	o := newEvaluateOptions(opts)
	p := experiments.RunParams{
		App: app, SLA: sla, Seed: o.Seed, UseLSTM: o.UseLSTM,
		Parallelism: o.Parallelism, Controller: o.Controller,
	}
	return experiments.NewDriver(system, p)
}

package smiless_test

import (
	"context"
	"testing"
	"time"

	"smiless"
)

// The root serving façade must be able to stand up a live runtime against
// any non-oracle system driver on a deterministic clock.
func TestServeFacade(t *testing.T) {
	app := smiless.ImageQuery()
	drv, err := smiless.NewSystemDriver(smiless.SystemSMIless, app, 2.0, smiless.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	clk := smiless.NewFakeClock()
	rt, err := smiless.NewRuntime(smiless.ServeConfig{App: app, SLA: 2.0, Clock: clk}, drv)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	ch, err := rt.Invoke(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	deadline := 10000
	for i := 0; ; i++ {
		select {
		case res := <-ch:
			if res.Failed {
				t.Fatalf("live invocation failed: %+v", res)
			}
			if res.E2E <= 0 {
				t.Errorf("E2E = %v, want positive", res.E2E)
			}
			if gw := smiless.NewServingGateway(rt, "SMIless"); gw == nil {
				t.Error("gateway construction failed")
			}
			return
		default:
		}
		if i >= deadline {
			t.Fatal("invocation did not complete under the fake clock")
		}
		if rt.Quiesced() {
			clk.AdvanceToNext()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func TestServeFacadeRejectsOracle(t *testing.T) {
	if _, err := smiless.NewSystemDriver(smiless.SystemOPT, smiless.ImageQuery(), 2.0); err == nil {
		t.Error("OPT must be rejected as a live driver")
	}
}

func TestWithWindowConfiguresSimulator(t *testing.T) {
	app := smiless.ImageQuery()
	drv, err := smiless.NewSystemDriver(smiless.SystemSMIless, app, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := smiless.NewSimulator(app, drv, 2.0, smiless.WithWindow(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Window(); got != 2.5 {
		t.Errorf("Window() = %v, want 2.5", got)
	}
	if _, err := smiless.NewSimulator(app, drv, 2.0, smiless.WithWindow(-1)); err == nil {
		t.Error("negative window should be rejected")
	}
}

// Package smiless is a reproduction of "SMIless: Serving DAG-based
// Inference with Dynamic Invocations under Serverless Computing" (SC 2024):
// a serverless ML-inference serving system that co-optimizes heterogeneous
// hardware configuration and cold-start management for DAG applications.
//
// The package is the public façade over the internal implementation:
//
//   - Build or pick an application DAG (AmberAlert, ImageQuery,
//     VoiceAssistant, or NewApplication for custom workflows).
//   - Profile its functions (Profile / TrueProfiles).
//   - Co-optimize configuration and cold-start policy (Optimize).
//   - Evaluate end-to-end on the simulated serverless cluster (Evaluate),
//     against the paper's baselines (Orion, IceBreaker, GrandSLAm,
//     Aquatope) or the OPT oracle.
//
// See the examples/ directory for runnable walkthroughs and DESIGN.md for
// the system inventory.
package smiless

import (
	"fmt"

	"smiless/internal/apps"
	"smiless/internal/coldstart"
	"smiless/internal/controller"
	"smiless/internal/core"
	"smiless/internal/dag"
	"smiless/internal/experiments"
	"smiless/internal/forecast"
	"smiless/internal/hardware"
	"smiless/internal/metrics"
	"smiless/internal/perfmodel"
	"smiless/internal/profiler"
	"smiless/internal/simulator"
	"smiless/internal/trace"
)

// Core re-exported types. These aliases are the supported public surface;
// their methods are documented in the internal packages.
type (
	// Application is a DAG workload: a validated graph whose nodes map to
	// inference functions with ground-truth performance models.
	Application = apps.Application
	// FunctionSpec is the synthetic ground truth for one function.
	FunctionSpec = apps.FunctionSpec
	// Graph is the workflow DAG.
	Graph = dag.Graph
	// NodeID names one function in a Graph.
	NodeID = dag.NodeID
	// Config is one hardware configuration (CPU cores or GPU share).
	Config = hardware.Config
	// Catalog is the ordered configuration space with pricing.
	Catalog = hardware.Catalog
	// Pricing holds unit costs.
	Pricing = hardware.Pricing
	// FnProfile is a fitted per-function performance profile.
	FnProfile = perfmodel.Profile
	// Plan is a joint (configuration, cold-start policy) assignment.
	Plan = coldstart.Plan
	// Decision is one function's cold-start policy outcome.
	Decision = coldstart.Decision
	// Trace is an invocation arrival trace.
	Trace = trace.Trace
	// RunStats aggregates a simulation run's outcomes.
	RunStats = simulator.RunStats
	// Driver is a pluggable serving system under evaluation.
	Driver = simulator.Driver
	// Directive is the per-function policy a Driver installs.
	Directive = simulator.Directive
	// Simulator is the discrete-event serverless cluster.
	Simulator = simulator.Simulator
	// OptimizeRequest parameterizes co-optimization.
	OptimizeRequest = core.Request
	// OptimizeResult is the optimizer output.
	OptimizeResult = core.Result
	// ControllerOptions configures the SMIless controller.
	ControllerOptions = controller.Options
	// ConfigError is the typed validation error returned for invalid run
	// configuration (bad simulator config, unknown forecaster names, ...).
	ConfigError = simulator.ConfigError
	// Forecaster is the pluggable forecasting interface behind the SMIless
	// Online Predictor (internal/forecast): Fit/Predict/Update/Clone over
	// an observation series. Select a registered family with
	// WithForecaster, or inject a custom one through
	// ControllerOptions.NewForecaster.
	Forecaster = forecast.Forecaster
	// ForecastConfig parameterizes one forecaster instance (seed, role,
	// training budget).
	ForecastConfig = forecast.Config
	// ForecastReport is the prediction-quality summary (per-horizon
	// MAE/sMAPE, upper-bound violation rate, refit counts) surfaced in
	// RunStats for forecaster-backed runs.
	ForecastReport = forecast.QualityReport
)

// Hardware kinds.
const (
	CPU = hardware.CPU
	GPU = hardware.GPU
)

// Cold-start policies.
const (
	Prewarm      = coldstart.Prewarm
	KeepAlive    = coldstart.KeepAlive
	NoMitigation = coldstart.NoMitigation
	AlwaysOn     = coldstart.AlwaysOn
)

// The paper's three evaluation applications (Fig. 7).
var (
	AmberAlert     = apps.AmberAlert
	ImageQuery     = apps.ImageQuery
	VoiceAssistant = apps.VoiceAssistant
	Pipeline       = apps.Pipeline
)

// Functions is the Table I function inventory keyed by short name.
var Functions = apps.Functions

// DefaultCatalog returns the paper's configuration space: CPU {1..16}
// cores plus GPU {10..100}% MPS shares at AWS-derived prices.
func DefaultCatalog() *Catalog { return hardware.DefaultCatalog() }

// CPUOnlyCatalog returns the CPU-only space (the SMIless-Homo ablation).
func CPUOnlyCatalog() *Catalog { return hardware.CPUOnlyCatalog() }

// NewApplication builds a custom application from functions (node ID →
// Table I short name) and directed edges. The DAG must have exactly one
// entry function.
func NewApplication(name string, functions map[NodeID]string, edges [][2]NodeID) (*Application, error) {
	g := dag.New()
	specs := make(map[NodeID]*FunctionSpec, len(functions))
	for id, fnName := range functions {
		spec, ok := apps.Functions[fnName]
		if !ok {
			return nil, fmt.Errorf("smiless: unknown function %q (want a Table I short name)", fnName)
		}
		if err := g.AddNode(id, spec.Model); err != nil {
			return nil, err
		}
		specs[id] = spec
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Application{Name: name, Graph: g, Specs: specs}, nil
}

// ProfileApplication runs the Offline Profiler (§IV-A) over every function
// of app: 10 cold-start measurements and the 25-CPU/50-GPU inference grid
// per function, fitted to the Eq. (1)/(2) latency laws with μ+3σ
// initialization estimates.
func ProfileApplication(app *Application, seed int64) (map[NodeID]*FnProfile, error) {
	p := profiler.New(metrics.NewStore(), profiler.DefaultOptions(seed))
	return p.ProfileApplication(app)
}

// Optimize runs the Strategy Optimizer (§V-C): top-1 path search with DAG
// decomposition and cost refinement over the catalog. The search fans paths
// out over a bounded worker pool and memoizes plan evaluations; tune the
// pool with WithParallelism. OptimizeResult.Search reports the worker count
// and cache hit/miss counters.
func Optimize(cat *Catalog, req OptimizeRequest, opts ...Option) (OptimizeResult, error) {
	o := newEvaluateOptions(opts)
	opt := core.New(cat)
	opt.Parallelism = o.Parallelism
	return opt.Optimize(req)
}

// NewSMIless builds the full SMIless controller as a simulator Driver:
// Online Predictor → Strategy Optimizer → Auto-scaler. Options: WithSeed,
// WithLSTM, WithParallelism, or WithControllerOptions for full control over
// ablations and schedules.
func NewSMIless(cat *Catalog, profiles map[NodeID]*FnProfile, sla float64, opts ...Option) Driver {
	o := newEvaluateOptions(opts)
	return controller.New(cat, profiles, sla, o.controllerOptions())
}

// DefaultControllerOptions returns the full SMIless configuration with
// LSTM predictors enabled.
func DefaultControllerOptions(seed int64) ControllerOptions {
	return controller.DefaultOptions(seed)
}

// Forecasters lists the registered forecaster family names accepted by
// WithForecaster, sorted.
func Forecasters() []string { return forecast.Names() }

// NewSimulator prepares the discrete-event serverless cluster for one
// (application, driver) evaluation at the given SLA. It returns a
// *simulator.ConfigError when the configuration is invalid (nil app or
// driver, negative SLA). Options: WithSeed, WithFaults, WithRecorder,
// WithWindow.
func NewSimulator(app *Application, driver Driver, sla float64, opts ...Option) (*Simulator, error) {
	o := newEvaluateOptions(opts)
	sim, err := simulator.New(simulator.Config{
		App: app, SLA: sla, Seed: o.Seed, Faults: o.Faults, Window: o.Window,
		Placement: o.Placement, Interference: o.Interference, PriceTrace: o.PriceTrace,
	}, driver)
	if err != nil {
		return nil, err
	}
	if o.Recorder != nil {
		sim.AttachRecorder(o.Recorder)
	}
	return sim, nil
}

// SystemName selects one of the built-in serving systems.
type SystemName = experiments.SystemName

// Built-in systems for Evaluate.
const (
	SystemSMIless    = experiments.SysSMIless
	SystemOrion      = experiments.SysOrion
	SystemIceBreaker = experiments.SysIceBreakr
	SystemGrandSLAm  = experiments.SysGrandSLAm
	SystemAquatope   = experiments.SysAquatope
	SystemOPT        = experiments.SysOPT
)

// Evaluate runs a named system on (app, trace, SLA) and returns the run
// statistics. The defaults are seed 0, moving-window predictors, no
// tracing, no faults; override with WithSeed, WithLSTM, WithRecorder,
// WithFaults, WithParallelism, WithControllerOptions. Unknown systems and
// invalid inputs return an error rather than panicking.
func Evaluate(system SystemName, app *Application, tr *Trace, sla float64, opts ...Option) (*RunStats, error) {
	if app == nil {
		return nil, fmt.Errorf("smiless: nil application")
	}
	if tr == nil {
		return nil, fmt.Errorf("smiless: nil trace")
	}
	if sla <= 0 {
		return nil, fmt.Errorf("smiless: non-positive SLA %v", sla)
	}
	o := newEvaluateOptions(opts)
	p := experiments.RunParams{
		App: app, SLA: sla, Seed: o.Seed, UseLSTM: o.UseLSTM,
		Forecaster: o.Forecaster,
		Faults:     o.Faults, Recorder: o.Recorder, Parallelism: o.Parallelism,
		Controller: o.Controller,
		Placement:  o.Placement, Interference: o.Interference, PriceTrace: o.PriceTrace,
	}
	return experiments.Run(system, p, tr)
}

// Workload generators (see internal/trace for the full set).
var (
	// PoissonTrace generates steady traffic at rate req/s.
	PoissonTrace = trace.Poisson
	// DiurnalTrace generates periodically modulated traffic.
	DiurnalTrace = trace.Diurnal
	// AzureLikeTrace generates the paper-style mixed workload.
	AzureLikeTrace = trace.AzureLike
	// DefaultAzureLike returns the default mixture parameters.
	DefaultAzureLike = trace.DefaultAzureLike
)

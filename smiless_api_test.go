package smiless_test

import (
	"math/rand"
	"testing"

	"smiless"
)

func TestNewApplicationValid(t *testing.T) {
	app, err := smiless.NewApplication("demo",
		map[smiless.NodeID]string{"a": "IR", "b": "QA"},
		[][2]smiless.NodeID{{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if app.Graph.Len() != 2 {
		t.Errorf("nodes = %d, want 2", app.Graph.Len())
	}
	if app.Spec("a").Model != "ResNet50" {
		t.Errorf("spec mapping wrong: %q", app.Spec("a").Model)
	}
}

func TestNewApplicationErrors(t *testing.T) {
	if _, err := smiless.NewApplication("bad",
		map[smiless.NodeID]string{"a": "NOPE"}, nil); err == nil {
		t.Error("unknown function should fail")
	}
	if _, err := smiless.NewApplication("bad",
		map[smiless.NodeID]string{"a": "IR", "b": "QA"},
		[][2]smiless.NodeID{{"a", "b"}, {"b", "a"}}); err == nil {
		t.Error("cycle should fail")
	}
	// Two entry points.
	if _, err := smiless.NewApplication("bad",
		map[smiless.NodeID]string{"a": "IR", "b": "QA"}, nil); err == nil {
		t.Error("two entries should fail")
	}
}

func TestPublicOptimizeFlow(t *testing.T) {
	app := smiless.ImageQuery()
	profiles, err := smiless.ProfileApplication(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smiless.Optimize(smiless.DefaultCatalog(), smiless.OptimizeRequest{
		Graph: app.Graph, Profiles: profiles, SLA: 2.0, IT: 15, Batch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Eval.E2ELatency > 2.0 {
		t.Errorf("optimize result: feasible=%v E2E=%v", res.Feasible, res.Eval.E2ELatency)
	}
	if len(res.Plan.Configs) != app.Graph.Len() {
		t.Error("incomplete plan")
	}
}

func TestPublicEvaluateFlow(t *testing.T) {
	app := smiless.VoiceAssistant()
	r := rand.New(rand.NewSource(2))
	tr := smiless.PoissonTrace(r, 0.05, 400)
	st, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0, smiless.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != tr.Len() {
		t.Fatalf("completed %d/%d", st.Completed, tr.Len())
	}
	if st.TotalCost <= 0 {
		t.Error("no cost recorded")
	}
}

func TestPublicSimulatorWithCustomDriver(t *testing.T) {
	app := smiless.Pipeline(2)
	profiles := app.TrueProfiles(3)
	drv := smiless.NewSMIless(smiless.DefaultCatalog(), profiles, 3.0, smiless.WithSeed(1))
	sim, err := smiless.NewSimulator(app, drv, 3.0, smiless.WithSeed(1))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	st, err := sim.Run(&smiless.Trace{Horizon: 120, Arrivals: []float64{10, 50, 90}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Completed != 3 {
		t.Errorf("completed %d/3", st.Completed)
	}
}

func TestTableIInventoryExported(t *testing.T) {
	if len(smiless.Functions) != 12 {
		t.Errorf("Functions = %d entries, want 12", len(smiless.Functions))
	}
	if smiless.Functions["TRS"].Model != "T5" {
		t.Error("TRS should map to T5")
	}
}

func TestCatalogsExported(t *testing.T) {
	if smiless.DefaultCatalog().Len() != 15 {
		t.Error("default catalog should have 15 configs")
	}
	if smiless.CPUOnlyCatalog().Len() != 5 {
		t.Error("CPU-only catalog should have 5 configs")
	}
}

package smiless_test

import (
	"errors"
	"sort"
	"testing"

	"smiless"
)

func TestForecastersListed(t *testing.T) {
	names := smiless.Forecasters()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Forecasters() not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"lstm", "transformer", "arima", "naive"} {
		if !seen[want] {
			t.Errorf("Forecasters() missing %q: %v", want, names)
		}
	}
}

func TestWithForecasterUnknownTypedError(t *testing.T) {
	app := smiless.ImageQuery()
	tr := optionsTrace(3)
	_, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0, smiless.WithForecaster("nope"))
	var ce *smiless.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *smiless.ConfigError", err, err)
	}
	if ce.Field != "forecaster" {
		t.Errorf("ConfigError.Field = %q, want forecaster", ce.Field)
	}
}

func TestWithForecasterOption(t *testing.T) {
	o := applyOptions(smiless.WithForecaster("transformer"))
	if o.Forecaster != "transformer" {
		t.Errorf("Forecaster = %q", o.Forecaster)
	}
	if !o.UseLSTM {
		t.Error("WithForecaster should enable the trained-forecaster path")
	}
	// Applied after WithControllerOptions, the family propagates into the
	// embedded controller options too.
	co := smiless.ControllerOptions{Seed: 1}
	o2 := applyOptions(smiless.WithControllerOptions(co), smiless.WithForecaster("arima"))
	if o2.Controller == nil || o2.Controller.Forecaster != "arima" {
		t.Error("WithForecaster did not propagate into explicit controller options")
	}
}

func TestWithForecasterRunReportsQuality(t *testing.T) {
	app := smiless.ImageQuery()
	tr := optionsTrace(4)
	st, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0,
		smiless.WithSeed(4), smiless.WithForecaster("naive"))
	if err != nil {
		t.Fatal(err)
	}
	if st.ForecastName != "naive" {
		t.Errorf("ForecastName = %q, want naive", st.ForecastName)
	}
	if st.ForecastIT.Forecaster != "naive" || st.ForecastCount.Forecaster != "naive" {
		t.Errorf("quality reports not attributed: it=%q count=%q",
			st.ForecastIT.Forecaster, st.ForecastCount.Forecaster)
	}
	// The default run carries no forecaster attribution, so existing
	// consumers of Summary() see byte-identical output.
	def, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0, smiless.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if def.ForecastName != "" {
		t.Errorf("default run ForecastName = %q, want empty", def.ForecastName)
	}
}

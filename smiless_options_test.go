package smiless_test

import (
	"math/rand"
	"strings"
	"testing"

	"smiless"
)

func optionsTrace(seed int64) *smiless.Trace {
	r := rand.New(rand.NewSource(seed))
	return smiless.PoissonTrace(r, 0.05, 300)
}

func applyOptions(opts ...smiless.Option) smiless.EvaluateOptions {
	var o smiless.EvaluateOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func TestEvaluateErrorPaths(t *testing.T) {
	app := smiless.ImageQuery()
	tr := optionsTrace(1)
	if _, err := smiless.Evaluate(smiless.SystemSMIless, nil, tr, 2.0); err == nil {
		t.Error("nil application should error")
	}
	if _, err := smiless.Evaluate(smiless.SystemSMIless, app, nil, 2.0); err == nil {
		t.Error("nil trace should error")
	}
	if _, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 0); err == nil {
		t.Error("zero SLA should error")
	}
	if _, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, -1); err == nil {
		t.Error("negative SLA should error")
	}
	_, err := smiless.Evaluate(smiless.SystemName("NoSuchSystem"), app, tr, 2.0)
	if err == nil {
		t.Fatal("unknown system should error")
	}
	if !strings.Contains(err.Error(), "NoSuchSystem") {
		t.Errorf("error %q does not name the unknown system", err)
	}
}

func TestEvaluateMatchesLegacyShim(t *testing.T) {
	app := smiless.ImageQuery()
	tr := optionsTrace(2)
	st, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0, smiless.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	legacy := smiless.EvaluateLegacy(smiless.SystemSMIless, smiless.ImageQuery(), tr, 2.0, 5, false)
	if st.Completed != legacy.Completed || st.TotalCost != legacy.TotalCost {
		t.Errorf("options and legacy runs diverged: (%d, %v) vs (%d, %v)",
			st.Completed, st.TotalCost, legacy.Completed, legacy.TotalCost)
	}
}

func TestWithParallelismIsInvisible(t *testing.T) {
	app := smiless.VoiceAssistant()
	tr := optionsTrace(3)
	seq, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.5,
		smiless.WithSeed(3), smiless.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := smiless.Evaluate(smiless.SystemSMIless, smiless.VoiceAssistant(), tr, 2.5,
		smiless.WithSeed(3), smiless.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if seq.TotalCost != par.TotalCost || seq.Completed != par.Completed ||
		seq.ViolationRate() != par.ViolationRate() {
		t.Errorf("worker-pool width leaked into run statistics: cost %v vs %v, completed %d vs %d",
			seq.TotalCost, par.TotalCost, seq.Completed, par.Completed)
	}
}

func TestWithRecorderCapturesSpans(t *testing.T) {
	app := smiless.ImageQuery()
	tr := optionsTrace(4)
	rec := smiless.NewRecorder(app)
	traced, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0,
		smiless.WithSeed(4), smiless.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Breakdowns()) != traced.Completed {
		t.Errorf("recorder captured %d breakdowns for %d completed requests",
			len(rec.Breakdowns()), traced.Completed)
	}
	// Tracing must be a pure observer.
	bare, err := smiless.Evaluate(smiless.SystemSMIless, smiless.ImageQuery(), tr, 2.0, smiless.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if bare.TotalCost != traced.TotalCost || bare.Completed != traced.Completed {
		t.Errorf("attaching a recorder changed the run: cost %v vs %v", bare.TotalCost, traced.TotalCost)
	}
}

func TestWithFaultsInjects(t *testing.T) {
	app := smiless.ImageQuery()
	tr := optionsTrace(5)
	plan := &smiless.FaultPlan{Seed: 11}
	plan.Default = smiless.FaultRates{ExecFail: 0.3}
	st, err := smiless.Evaluate(smiless.SystemSMIless, app, tr, 2.0,
		smiless.WithSeed(5), smiless.WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecFailures == 0 {
		t.Error("30% exec-fail plan injected no failures")
	}
	clean, err := smiless.Evaluate(smiless.SystemSMIless, smiless.ImageQuery(), tr, 2.0, smiless.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if clean.ExecFailures != 0 {
		t.Errorf("fault-free run reports %d exec failures", clean.ExecFailures)
	}
}

func TestOptionComposition(t *testing.T) {
	co := smiless.DefaultControllerOptions(42)
	o := applyOptions(smiless.WithControllerOptions(co), smiless.WithSeed(9), smiless.WithLSTM(false))
	if o.Seed != 9 || o.Controller.Seed != 9 {
		t.Errorf("WithSeed after WithControllerOptions did not win: %d / %d", o.Seed, o.Controller.Seed)
	}
	if o.UseLSTM || o.Controller.UseLSTM {
		t.Error("WithLSTM(false) after WithControllerOptions did not win")
	}
	// Applied the other way around, the controller configuration wins.
	o = applyOptions(smiless.WithSeed(9), smiless.WithControllerOptions(co))
	if o.Seed != 42 || !o.UseLSTM {
		t.Errorf("WithControllerOptions applied last should adopt its values, got seed %d lstm %v", o.Seed, o.UseLSTM)
	}
	o = applyOptions(smiless.WithParallelism(4), smiless.WithFaults(nil))
	if o.Parallelism != 4 || o.Faults != nil || o.Recorder != nil {
		t.Errorf("unexpected options state: %+v", o)
	}
}

func TestNewSimulatorOptions(t *testing.T) {
	app := smiless.Pipeline(2)
	profiles := app.TrueProfiles(3)
	rec := smiless.NewRecorder(app)
	drv := smiless.NewSMIless(smiless.DefaultCatalog(), profiles, 3.0, smiless.WithSeed(1))
	sim, err := smiless.NewSimulator(app, drv, 3.0, smiless.WithSeed(1), smiless.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(&smiless.Trace{Horizon: 120, Arrivals: []float64{10, 50, 90}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 3 {
		t.Errorf("completed %d/3", st.Completed)
	}
	if len(rec.Breakdowns()) != 3 {
		t.Errorf("recorder captured %d/3 requests", len(rec.Breakdowns()))
	}
	if _, err := smiless.NewSimulator(nil, drv, 3.0); err == nil {
		t.Error("nil app should error")
	}
	if _, err := smiless.NewSimulator(app, nil, 3.0); err == nil {
		t.Error("nil driver should error")
	}
}

func TestLegacySimulatorAndControllerShims(t *testing.T) {
	app := smiless.Pipeline(2)
	profiles := app.TrueProfiles(3)
	opts := smiless.DefaultControllerOptions(1)
	opts.UseLSTM = false
	drv := smiless.NewSMIlessLegacy(smiless.DefaultCatalog(), profiles, 3.0, opts)
	sim, err := smiless.NewSimulatorLegacy(app, drv, 3.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Run(&smiless.Trace{Horizon: 120, Arrivals: []float64{10, 50, 90}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 3 {
		t.Errorf("completed %d/3", st.Completed)
	}
}

func TestOptimizeWithParallelism(t *testing.T) {
	app := smiless.VoiceAssistant()
	profiles := app.TrueProfiles(3)
	req := smiless.OptimizeRequest{Graph: app.Graph, Profiles: profiles, SLA: 2.5, IT: 30, Batch: 1}
	seq, err := smiless.Optimize(smiless.DefaultCatalog(), req, smiless.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := smiless.Optimize(smiless.DefaultCatalog(), req, smiless.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Eval.CostPerInvocation != par.Eval.CostPerInvocation ||
		seq.Eval.E2ELatency != par.Eval.E2ELatency || seq.Feasible != par.Feasible {
		t.Errorf("Optimize results differ across worker widths: %+v vs %+v", seq.Eval, par.Eval)
	}
	if par.Search.Workers < 1 {
		t.Errorf("Search.Workers = %d, want >= 1", par.Search.Workers)
	}
}
